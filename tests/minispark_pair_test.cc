#include "minispark/pair_rdd.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace adrdedup::minispark {
namespace {

using IntPair = std::pair<int, int>;

class PairRddTest : public ::testing::Test {
 protected:
  Rdd<IntPair> MakePairs(int n, int num_keys, size_t partitions = 4) {
    std::vector<IntPair> data;
    for (int i = 0; i < n; ++i) data.emplace_back(i % num_keys, i);
    return ctx_.Parallelize(std::move(data), partitions);
  }

  SparkContext ctx_{SparkContext::Config{.num_executors = 4}};
};

TEST_F(PairRddTest, PartitionByKeyGroupsKeysTogether) {
  auto shuffled = PartitionByKey(MakePairs(100, 10), 4);
  EXPECT_EQ(shuffled.NumPartitions(), 4u);
  const auto parts = shuffled.GlomCollect();
  // Every key must appear in exactly one partition.
  std::map<int, std::set<size_t>> key_partitions;
  for (size_t p = 0; p < parts.size(); ++p) {
    for (const auto& [key, value] : parts[p]) {
      key_partitions[key].insert(p);
    }
  }
  for (const auto& [key, where] : key_partitions) {
    EXPECT_EQ(where.size(), 1u) << "key " << key << " split across shuffles";
  }
  EXPECT_EQ(shuffled.Count(), 100u);
}

TEST_F(PairRddTest, ReduceByKeyMatchesSequential) {
  auto sums = ReduceByKey(MakePairs(1000, 7),
                          [](int a, int b) { return a + b; }, 4);
  auto result = CollectAsMap(sums);
  std::map<int, int> expected;
  for (int i = 0; i < 1000; ++i) expected[i % 7] += i;
  ASSERT_EQ(result.size(), expected.size());
  for (const auto& [key, sum] : expected) {
    EXPECT_EQ(result[key], sum) << "key " << key;
  }
}

TEST_F(PairRddTest, ReduceByKeySingleKey) {
  auto sums = ReduceByKey(MakePairs(50, 1),
                          [](int a, int b) { return a + b; }, 3);
  auto result = sums.Collect();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].second, 1225);
}

TEST_F(PairRddTest, GroupByKeyCollectsAllValues) {
  auto groups = GroupByKey(MakePairs(30, 3), 2);
  auto result = CollectAsMap(groups);
  ASSERT_EQ(result.size(), 3u);
  for (int key = 0; key < 3; ++key) {
    auto values = result[key];
    std::sort(values.begin(), values.end());
    ASSERT_EQ(values.size(), 10u);
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(values[i], key + static_cast<int>(i) * 3);
    }
  }
}

TEST_F(PairRddTest, AggregateByKeyAverages) {
  auto aggregated = AggregateByKey(
      MakePairs(100, 4), std::pair<long, int>{0L, 0},
      [](std::pair<long, int> acc, int v) {
        return std::pair<long, int>{acc.first + v, acc.second + 1};
      },
      [](std::pair<long, int> a, std::pair<long, int> b) {
        return std::pair<long, int>{a.first + b.first,
                                    a.second + b.second};
      },
      4);
  auto result = CollectAsMap(aggregated);
  ASSERT_EQ(result.size(), 4u);
  for (const auto& [key, acc] : result) {
    EXPECT_EQ(acc.second, 25);
  }
}

TEST_F(PairRddTest, JoinInner) {
  std::vector<std::pair<int, std::string>> left = {
      {1, "a"}, {2, "b"}, {3, "c"}, {1, "a2"}};
  std::vector<std::pair<int, double>> right = {
      {1, 1.5}, {3, 3.5}, {4, 4.5}};
  auto joined = Join(ctx_.Parallelize(std::move(left), 2),
                     ctx_.Parallelize(std::move(right), 3), 4);
  auto rows = joined.Collect();
  // Keys: 1 matches twice (two left rows), 3 once, 2 and 4 never.
  EXPECT_EQ(rows.size(), 3u);
  std::multiset<int> keys;
  for (const auto& [key, vw] : rows) keys.insert(key);
  EXPECT_EQ(keys.count(1), 2u);
  EXPECT_EQ(keys.count(3), 1u);
  EXPECT_EQ(keys.count(2), 0u);
}

TEST_F(PairRddTest, JoinEmptySideYieldsEmpty) {
  auto left = ctx_.Parallelize(std::vector<IntPair>{{1, 1}}, 1);
  auto right = ctx_.Parallelize(std::vector<IntPair>{}, 1);
  EXPECT_EQ(Join(left, right, 2).Count(), 0u);
}

TEST_F(PairRddTest, CountByKey) {
  auto counts = CountByKey(MakePairs(100, 6));
  size_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(counts.size(), 6u);
}

TEST_F(PairRddTest, ShuffleMetricsAccounted) {
  ctx_.metrics().Reset();
  ReduceByKey(MakePairs(200, 5), [](int a, int b) { return a + b; }, 4)
      .Count();
  const auto snapshot = ctx_.metrics().Snapshot();
  EXPECT_EQ(snapshot.shuffles_performed, 1u);
  // Map-side combine shrinks shuffle volume to ~keys-per-partition.
  EXPECT_LE(snapshot.shuffle_records_written, 4u * 5u);
  EXPECT_GE(snapshot.shuffle_records_written, 5u);
}

TEST_F(PairRddTest, ResultsIndependentOfPartitionCount) {
  auto reference = CollectAsMap(ReduceByKey(
      MakePairs(500, 11), [](int a, int b) { return a + b; }, 1));
  for (size_t parts : {2u, 5u, 16u}) {
    auto result = CollectAsMap(ReduceByKey(
        MakePairs(500, 11), [](int a, int b) { return a + b; }, parts));
    EXPECT_EQ(result, reference) << parts << " partitions";
  }
}

TEST_F(PairRddTest, StringKeysWork) {
  std::vector<std::pair<std::string, int>> data = {
      {"alpha", 1}, {"beta", 2}, {"alpha", 3}};
  auto sums = ReduceByKey(ctx_.Parallelize(std::move(data), 2),
                          [](int a, int b) { return a + b; }, 2);
  auto result = CollectAsMap(sums);
  EXPECT_EQ(result["alpha"], 4);
  EXPECT_EQ(result["beta"], 2);
}

}  // namespace
}  // namespace adrdedup::minispark
