#include "util/flags.h"

#include <gtest/gtest.h>

namespace adrdedup::util {
namespace {

FlagSet MustParse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  auto parsed = FlagSet::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(FlagSetTest, ParsesKeyValue) {
  const auto flags = MustParse({"--out=/tmp/x.csv", "--reports=500"});
  EXPECT_EQ(flags.GetString("out", ""), "/tmp/x.csv");
  EXPECT_EQ(flags.GetInt("reports", 0).value(), 500);
}

TEST(FlagSetTest, BareFlagIsBooleanTrue) {
  const auto flags = MustParse({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("quiet"));
}

TEST(FlagSetTest, BooleanFalseSpellings) {
  const auto flags = MustParse({"--a=false", "--b=0", "--c=yes"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
}

TEST(FlagSetTest, DefaultsWhenAbsent) {
  const auto flags = MustParse({});
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 7).value(), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 0.5).value(), 0.5);
  EXPECT_TRUE(flags.GetBool("missing", true));
}

TEST(FlagSetTest, PositionalArguments) {
  const auto flags = MustParse({"input.csv", "--k=9", "output.csv"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(FlagSetTest, DoubleDashEndsFlagParsing) {
  const auto flags = MustParse({"--k=9", "--", "--not-a-flag"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"--not-a-flag"}));
  EXPECT_FALSE(flags.Has("not-a-flag"));
}

TEST(FlagSetTest, BadIntegerRejected) {
  const auto flags = MustParse({"--k=nine"});
  EXPECT_FALSE(flags.GetInt("k", 0).ok());
}

TEST(FlagSetTest, BadDoubleRejected) {
  const auto flags = MustParse({"--theta=half"});
  EXPECT_FALSE(flags.GetDouble("theta", 0.0).ok());
}

TEST(FlagSetTest, DoubleParsing) {
  const auto flags = MustParse({"--theta=-2.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("theta", 0.0).value(), -2.5);
}

TEST(FlagSetTest, ExpectOnlyFlagsTypos) {
  const auto flags = MustParse({"--out=x", "--reprots=5"});
  EXPECT_TRUE(flags.ExpectOnly({"out", "reports"}).ok() == false);
  EXPECT_TRUE(flags.ExpectOnly({"out", "reprots"}).ok());
}

TEST(FlagSetTest, MalformedFlagsRejected) {
  const char* argv1[] = {"tool", "--=value"};
  EXPECT_FALSE(FlagSet::Parse(2, argv1).ok());
}

TEST(FlagSetTest, LastValueWinsOnRepeat) {
  const auto flags = MustParse({"--k=3", "--k=9"});
  EXPECT_EQ(flags.GetInt("k", 0).value(), 9);
}

}  // namespace
}  // namespace adrdedup::util
