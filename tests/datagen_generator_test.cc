#include "datagen/generator.h"

#include <set>

#include <gtest/gtest.h>

#include "report/field.h"

namespace adrdedup::datagen {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_reports = 800;
  config.num_duplicate_pairs = 60;
  config.num_drugs = 120;
  config.num_adrs = 200;
  return config;
}

TEST(GeneratorTest, Table3StatisticsReproduced) {
  // The default configuration reproduces the paper's Table 3 exactly.
  GeneratorConfig config;
  auto corpus = GenerateCorpus(config);
  auto summary = Summarize(corpus, config);
  EXPECT_EQ(summary.num_cases, 10382u);
  EXPECT_EQ(summary.num_fields, 37u);
  EXPECT_EQ(summary.num_unique_drugs, 1366u);
  EXPECT_EQ(summary.num_unique_adrs, 2351u);
  EXPECT_EQ(summary.known_duplicate_pairs, 286u);
  EXPECT_EQ(summary.report_period, "1 Jul. 2013 - 31 Dec. 2013");
}

TEST(GeneratorTest, SmallCorpusShape) {
  auto corpus = GenerateCorpus(SmallConfig());
  EXPECT_EQ(corpus.db.size(), 800u);
  EXPECT_EQ(corpus.duplicate_pairs.size(), 60u);
}

TEST(GeneratorTest, DuplicatePairIdsValidAndOrdered) {
  auto corpus = GenerateCorpus(SmallConfig());
  for (const auto& [a, b] : corpus.duplicate_pairs) {
    EXPECT_LT(a, b);
    EXPECT_LT(b, corpus.db.size());
  }
}

TEST(GeneratorTest, DuplicatePairsAreDistinct) {
  auto corpus = GenerateCorpus(SmallConfig());
  std::set<std::pair<report::ReportId, report::ReportId>> seen(
      corpus.duplicate_pairs.begin(), corpus.duplicate_pairs.end());
  EXPECT_EQ(seen.size(), corpus.duplicate_pairs.size());
}

TEST(GeneratorTest, EachOriginalDuplicatedAtMostOnce) {
  auto corpus = GenerateCorpus(SmallConfig());
  std::set<report::ReportId> originals;
  for (const auto& [a, b] : corpus.duplicate_pairs) {
    EXPECT_TRUE(originals.insert(a).second);
  }
}

TEST(GeneratorTest, SiblingPairsDisjointFromDuplicates) {
  auto corpus = GenerateCorpus(SmallConfig());
  EXPECT_FALSE(corpus.sibling_pairs.empty());
  std::set<std::pair<report::ReportId, report::ReportId>> dups(
      corpus.duplicate_pairs.begin(), corpus.duplicate_pairs.end());
  for (auto [a, b] : corpus.sibling_pairs) {
    if (a > b) std::swap(a, b);
    EXPECT_LT(b, corpus.db.size());
    EXPECT_FALSE(dups.contains({a, b}));
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  auto c1 = GenerateCorpus(SmallConfig());
  auto c2 = GenerateCorpus(SmallConfig());
  ASSERT_EQ(c1.db.size(), c2.db.size());
  for (size_t i = 0; i < c1.db.size(); ++i) {
    ASSERT_EQ(c1.db.Get(static_cast<report::ReportId>(i)),
              c2.db.Get(static_cast<report::ReportId>(i)));
  }
  EXPECT_EQ(c1.duplicate_pairs, c2.duplicate_pairs);
  EXPECT_EQ(c1.sibling_pairs, c2.sibling_pairs);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config = SmallConfig();
  auto c1 = GenerateCorpus(config);
  config.seed = 12345;
  auto c2 = GenerateCorpus(config);
  bool any_difference = false;
  for (size_t i = 0; i < c1.db.size() && !any_difference; ++i) {
    any_difference = !(c1.db.Get(static_cast<report::ReportId>(i)) ==
                       c2.db.Get(static_cast<report::ReportId>(i)));
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, DuplicatesShareCoreIdentity) {
  auto corpus = GenerateCorpus(SmallConfig());
  size_t same_sex = 0;
  for (const auto& [a, b] : corpus.duplicate_pairs) {
    const auto& ra = corpus.db.Get(a);
    const auto& rb = corpus.db.Get(b);
    // Distinct case numbers (they entered as separate records).
    EXPECT_NE(ra.case_number(), rb.case_number());
    if (ra.sex() == rb.sex()) ++same_sex;
  }
  // Sex flips are rare data-entry errors.
  EXPECT_GT(same_sex * 10, corpus.duplicate_pairs.size() * 7);
}

TEST(GeneratorTest, DescriptionsAreNarrativeLength) {
  auto corpus = GenerateCorpus(SmallConfig());
  size_t in_range = 0;
  for (size_t i = 0; i < corpus.db.size(); ++i) {
    const auto& desc =
        corpus.db.Get(static_cast<report::ReportId>(i)).description();
    EXPECT_GT(desc.size(), 80u);
    if (desc.size() >= 150 && desc.size() <= 400) ++in_range;
  }
  // The paper says the majority are 250-300 chars; our templates land in
  // a comparable band.
  EXPECT_GT(in_range * 10, corpus.db.size() * 8);
}

TEST(GeneratorTest, ReportDatesInsideWindow) {
  auto corpus = GenerateCorpus(SmallConfig());
  for (size_t i = 0; i < corpus.db.size(); ++i) {
    const auto& date =
        corpus.db.Get(static_cast<report::ReportId>(i))
            .Get(report::FieldId::kReportDate);
    ASSERT_EQ(date.size(), 10u) << date;
    const int year = std::stoi(date.substr(6, 4));
    EXPECT_GE(year, 2013);
    EXPECT_LE(year, 2014);  // late duplicates may spill a few weeks
  }
}

TEST(GeneratorTest, AllFieldsPopulatedModuloMissingness) {
  auto corpus = GenerateCorpus(SmallConfig());
  // Spot-check a handful of always-populated fields.
  for (size_t i = 0; i < corpus.db.size(); i += 97) {
    const auto& report = corpus.db.Get(static_cast<report::ReportId>(i));
    EXPECT_FALSE(report.case_number().empty());
    EXPECT_FALSE(report.sex().empty());
    EXPECT_FALSE(report.drug_name().empty());
    EXPECT_FALSE(report.adr_name().empty());
    EXPECT_FALSE(report.description().empty());
    EXPECT_FALSE(report.Get(report::FieldId::kReporterType).empty());
  }
}

TEST(ProfileCorpusTest, MissingRatesTrackConfig) {
  GeneratorConfig config = SmallConfig();
  auto corpus = GenerateCorpus(config);
  const auto profile = ProfileCorpus(corpus);
  // DedupFields order: age, sex, state, onset, drug, adr, description.
  EXPECT_NEAR(profile.missing_rate[0], config.p_missing_age, 0.05);
  EXPECT_DOUBLE_EQ(profile.missing_rate[1], 0.0);  // sex always present
  // State and onset pick up extra missingness from duplicate corruption
  // and sloppy siblings, so only lower bounds are stable.
  EXPECT_GE(profile.missing_rate[2], config.p_missing_state * 0.7);
  EXPECT_GE(profile.missing_rate[3], config.p_missing_onset * 0.7);
  EXPECT_DOUBLE_EQ(profile.missing_rate[4], 0.0);  // drug always present
  EXPECT_DOUBLE_EQ(profile.missing_rate[6], 0.0);  // description present
}

TEST(ProfileCorpusTest, DescriptionLengthBand) {
  auto corpus = GenerateCorpus(SmallConfig());
  const auto profile = ProfileCorpus(corpus);
  EXPECT_GT(profile.mean_description_length, 150.0);
  EXPECT_LT(profile.mean_description_length, 450.0);
  EXPECT_GT(profile.description_in_band_fraction, 0.8);
  EXPECT_LE(profile.min_description_length,
            profile.max_description_length);
}

TEST(GeneratorTest, RejectsImpossibleConfig) {
  GeneratorConfig config = SmallConfig();
  config.num_reports = 100;
  config.num_duplicate_pairs = 60;
  EXPECT_DEATH({ auto c = GenerateCorpus(config); (void)c; },
               "corpus too small");
}

}  // namespace
}  // namespace adrdedup::datagen
