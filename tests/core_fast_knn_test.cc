#include "core/fast_knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/random.h"

namespace adrdedup::core {
namespace {

using distance::DistanceVector;
using distance::EuclideanDistance;
using distance::kDistanceDims;
using distance::LabeledPair;

std::vector<LabeledPair> RandomPairs(size_t n, double positive_rate,
                                     uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LabeledPair> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < kDistanceDims; ++d) {
      pairs[i].vector[d] = rng.UniformDouble();
    }
    pairs[i].label = rng.Bernoulli(positive_rate) ? +1 : -1;
  }
  return pairs;
}

// Two-mode data resembling the real distance-vector geometry: positives
// near the origin, negatives spread out.
std::vector<LabeledPair> StructuredPairs(size_t n, double positive_rate,
                                         uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LabeledPair> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.Bernoulli(positive_rate);
    pairs[i].label = positive ? +1 : -1;
    for (size_t d = 0; d < kDistanceDims; ++d) {
      pairs[i].vector[d] = positive ? rng.UniformDouble(0.0, 0.4)
                                    : rng.UniformDouble(0.1, 1.0);
    }
  }
  return pairs;
}

// THE paper-critical invariant: with the all-negative early exit
// disabled, Fast kNN's Voronoi + Algorithm-1 search returns exactly the
// same neighbours (same distances, same labels) as a brute-force scan of
// the full training set — the hyperplane pruning is lossless.
class FastKnnExactness
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(FastKnnExactness, MatchesBruteForceExactly) {
  const auto [k, num_clusters, seed] = GetParam();
  const auto train = StructuredPairs(3000, 0.02, seed);
  const auto queries = StructuredPairs(100, 0.02, seed + 1);

  FastKnnOptions options;
  options.k = k;
  options.num_clusters = num_clusters;
  options.early_exit_all_negative = false;
  options.seed = seed;
  FastKnnClassifier fast(options);
  fast.Fit(train);

  ml::KnnClassifier brute(ml::KnnOptions{.k = k});
  brute.Fit(train);

  for (const auto& query : queries) {
    const FastKnnResult result = fast.Classify(query.vector);
    const auto reference =
        ml::BruteForceKnn(query.vector, train, k);
    ASSERT_EQ(result.neighbors.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      // Indices live in different id spaces (partitioned vs global), but
      // the distance/label multisets must match exactly.
      EXPECT_DOUBLE_EQ(result.neighbors[i].distance,
                       reference[i].distance);
      EXPECT_EQ(result.neighbors[i].label, reference[i].label);
    }
    EXPECT_DOUBLE_EQ(result.score, brute.Score(query.vector));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastKnnExactness,
    ::testing::Combine(::testing::Values(1, 5, 9, 21),
                       ::testing::Values(2, 8, 32, 64),
                       ::testing::Values(11u, 97u)));

TEST(FastKnnTest, EarlyExitPreservesClassificationAtNonNegativeTheta) {
  const auto train = StructuredPairs(4000, 0.02, 5);
  const auto queries = StructuredPairs(300, 0.02, 6);

  FastKnnOptions exact_options;
  exact_options.num_clusters = 16;
  exact_options.early_exit_all_negative = false;
  FastKnnClassifier exact(exact_options);
  exact.Fit(train);

  FastKnnOptions fast_options = exact_options;
  fast_options.early_exit_all_negative = true;
  FastKnnClassifier fast(fast_options);
  fast.Fit(train);

  for (double theta : {0.0, 0.5, 10.0}) {
    for (const auto& query : queries) {
      EXPECT_EQ(FastKnnClassifier::Classify(fast.Score(query.vector), theta),
                FastKnnClassifier::Classify(exact.Score(query.vector), theta))
          << "theta=" << theta;
    }
  }
}

TEST(FastKnnTest, EarlyExitActuallyFires) {
  const auto train = StructuredPairs(3000, 0.01, 7);
  const auto queries = StructuredPairs(200, 0.01, 8);
  FastKnnOptions options;
  options.num_clusters = 16;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);
  for (const auto& query : queries) classifier.Score(query.vector);
  const auto stats = classifier.stats().Snapshot();
  EXPECT_EQ(stats.queries, 200u);
  EXPECT_GT(stats.early_exits, 100u);  // most pairs are obvious negatives
}

TEST(FastKnnTest, HyperplaneDistanceMatchesEq7Geometry) {
  // In the 1-D slice of the vector space the Eq. 7 expression reduces to
  // the signed distance to the midpoint between the two centers.
  const auto train = [] {
    std::vector<LabeledPair> pairs(40);
    for (size_t i = 0; i < 40; ++i) {
      pairs[i].vector[0] = (i < 20) ? 0.1 : 0.9;
      pairs[i].vector[1] = (i % 20) * 1e-4;  // break exact ties
      pairs[i].label = -1;
    }
    pairs[0].label = +1;
    return pairs;
  }();

  FastKnnOptions options;
  options.num_clusters = 2;
  options.kmeans_max_iterations = 50;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);
  ASSERT_EQ(classifier.centers().size(), 2u);

  DistanceVector query;
  query[0] = 0.2;
  query[1] = 1e-4 * 10;
  const size_t home =
      EuclideanDistance(query, classifier.centers()[0]) <
              EuclideanDistance(query, classifier.centers()[1])
          ? 0
          : 1;
  const size_t other = 1 - home;
  // Any neighbour in the other cell is at least as far as the hyperplane:
  // verify via SelectAdditionalPartitions thresholding.
  const double d_home = EuclideanDistance(query, classifier.centers()[home]);
  const double d_other =
      EuclideanDistance(query, classifier.centers()[other]);
  const double d_centers = EuclideanDistance(classifier.centers()[0],
                                             classifier.centers()[1]);
  const double expected_h =
      (d_other * d_other - d_home * d_home) / (2.0 * d_centers);
  // kth distance below the hyperplane distance: no extra partitions.
  EXPECT_TRUE(classifier
                  .SelectAdditionalPartitions(query, home,
                                              expected_h * 0.99)
                  .empty());
  // kth distance above it: the other partition must be selected.
  const auto selected = classifier.SelectAdditionalPartitions(
      query, home, expected_h * 1.01);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], other);
}

TEST(FastKnnTest, UnselectedPartitionsContainNoCloserPoint) {
  // Direct check of Observation 4: every point of every partition that
  // Algorithm 1 does NOT select is farther than the given kth distance.
  const auto train = RandomPairs(2000, 0.05, 9);
  FastKnnOptions options;
  options.num_clusters = 20;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);

  util::Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    DistanceVector query;
    for (size_t d = 0; d < kDistanceDims; ++d) {
      query[d] = rng.UniformDouble();
    }
    const size_t home =
        ml::NearestCenter(query, classifier.centers());
    const double kth = rng.UniformDouble(0.0, 0.5);
    const auto selected =
        classifier.SelectAdditionalPartitions(query, home, kth);
    std::vector<bool> is_selected(classifier.num_partitions(), false);
    for (size_t j : selected) is_selected[j] = true;
    for (size_t j = 0; j < classifier.num_partitions(); ++j) {
      if (j == home || is_selected[j]) continue;
      for (const auto& pair : classifier.partition(j)) {
        ASSERT_GE(EuclideanDistance(query, pair.vector), kth)
            << "partition " << j << " hides a closer neighbour";
      }
    }
  }
}

TEST(FastKnnTest, PruningDisabledSearchesEverything) {
  const auto train = RandomPairs(1000, 0.05, 11);
  FastKnnOptions options;
  options.num_clusters = 10;
  options.prune_with_hyperplanes = false;
  options.early_exit_all_negative = false;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);

  const auto queries = RandomPairs(20, 0.05, 12);
  for (const auto& query : queries) classifier.Score(query.vector);
  const auto stats = classifier.stats().Snapshot();
  // intra + cross must cover every negative for every query.
  const uint64_t total_negatives = train.size() - classifier.positives().size();
  EXPECT_EQ(stats.intra_cluster_comparisons +
                stats.cross_cluster_comparisons,
            stats.queries * total_negatives);
  EXPECT_EQ(stats.positive_comparisons,
            stats.queries * classifier.positives().size());
}

TEST(FastKnnTest, PruningReducesComparisons) {
  const auto train = StructuredPairs(4000, 0.02, 13);
  const auto queries = StructuredPairs(100, 0.02, 14);

  auto run = [&](bool prune) {
    FastKnnOptions options;
    options.num_clusters = 32;
    options.prune_with_hyperplanes = prune;
    options.early_exit_all_negative = false;
    FastKnnClassifier classifier(options);
    classifier.Fit(train);
    for (const auto& query : queries) classifier.Score(query.vector);
    return classifier.stats().Snapshot();
  };

  const auto pruned = run(true);
  const auto naive = run(false);
  // On uniform 7-dim vectors the hyperplane bound is loose (the curse of
  // dimensionality keeps kth-neighbour distances large), so require a
  // solid-but-not-dramatic cut here; the real distance-vector geometry
  // (integration_test) prunes far harder.
  EXPECT_LT(pruned.cross_cluster_comparisons,
            naive.cross_cluster_comparisons * 9 / 10);
  EXPECT_LT(pruned.additional_clusters_checked,
            naive.additional_clusters_checked);
}

TEST(FastKnnTest, StatsIntraMatchesAssignedPartitionSizes) {
  const auto train = RandomPairs(500, 0.1, 15);
  FastKnnOptions options;
  options.num_clusters = 8;
  options.early_exit_all_negative = false;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);

  DistanceVector query;
  query[0] = 0.5;
  const size_t home = ml::NearestCenter(query, classifier.centers());
  classifier.Score(query);
  const auto stats = classifier.stats().Snapshot();
  EXPECT_EQ(stats.intra_cluster_comparisons,
            classifier.partition(home).size());
}

TEST(FastKnnTest, ScoreAllSparkMatchesSequential) {
  const auto train = StructuredPairs(2000, 0.03, 16);
  const auto queries = StructuredPairs(150, 0.03, 17);
  FastKnnOptions options;
  options.num_clusters = 12;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);

  const auto sequential = classifier.ScoreAll(queries);
  minispark::SparkContext ctx({.num_executors = 6});
  const auto spark = classifier.ScoreAllSpark(&ctx, queries, 5);
  ASSERT_EQ(sequential.size(), spark.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_DOUBLE_EQ(sequential[i], spark[i]);
  }
}

TEST(FastKnnTest, ScoreAllSparkParityOn1kRandomQueries) {
  // The re-batched minispark path (one scratch per whole-partition task)
  // must agree bit-for-bit with the sequential scratch path.
  const auto train = StructuredPairs(3000, 0.03, 21);
  const auto queries = RandomPairs(1000, 0.03, 22);
  for (const bool early_exit : {true, false}) {
    FastKnnOptions options;
    options.num_clusters = 16;
    options.early_exit_all_negative = early_exit;
    FastKnnClassifier classifier(options);
    classifier.Fit(train);

    const auto sequential = classifier.ScoreAll(queries);
    minispark::SparkContext ctx({.num_executors = 8});
    const auto spark = classifier.ScoreAllSpark(&ctx, queries, 7);
    ASSERT_EQ(sequential.size(), spark.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      ASSERT_EQ(sequential[i], spark[i])
          << "query " << i << " early_exit=" << early_exit;
    }
  }
}

TEST(FastKnnTest, ExplicitScratchMatchesThreadLocalPath) {
  const auto train = StructuredPairs(1500, 0.03, 23);
  const auto queries = StructuredPairs(50, 0.03, 24);
  FastKnnOptions options;
  options.num_clusters = 8;
  options.early_exit_all_negative = false;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);

  FastKnnScratch scratch;
  for (const auto& query : queries) {
    const FastKnnResult via_scratch = classifier.Classify(query.vector,
                                                          &scratch);
    const FastKnnResult plain = classifier.Classify(query.vector);
    ASSERT_EQ(via_scratch.score, plain.score);
    ASSERT_EQ(via_scratch.neighbors.size(), plain.neighbors.size());
    for (size_t i = 0; i < plain.neighbors.size(); ++i) {
      EXPECT_EQ(via_scratch.neighbors[i].index, plain.neighbors[i].index);
      EXPECT_EQ(via_scratch.neighbors[i].distance,
                plain.neighbors[i].distance);
    }
    EXPECT_EQ(classifier.Score(query.vector, &scratch), plain.score);
  }
}

TEST(FastKnnTest, IncrementalTighteningSearchesFewerCellsThanOneShot) {
  // Algorithm 1's loop re-tests the pruning condition against the k-th
  // distance re-tightened after every searched cell. The cells actually
  // searched must be strictly fewer (in aggregate) than the one-shot
  // selection against the stale stage-1 bound, and never more for any
  // single query.
  const auto train = StructuredPairs(4000, 0.02, 25);
  const auto queries = StructuredPairs(300, 0.02, 26);
  FastKnnOptions options;
  options.num_clusters = 32;
  options.early_exit_all_negative = false;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);
  const size_t k = options.k;

  uint64_t one_shot_cells = 0;
  for (const auto& query : queries) {
    const size_t home = ml::NearestCenter(query.vector,
                                          classifier.centers());
    // Reproduce the stale stage-1 bound: k-th distance after the home
    // cell and the positive sweep only.
    const auto stage1 =
        ml::BruteForceKnn(query.vector, classifier.partition(home), k);
    const auto positive = ml::BruteForceKnn(query.vector,
                                            classifier.positives(), k);
    const auto merged = ml::MergeNeighbors(stage1, positive, k);
    const double stale_kth = merged.size() < k
                                 ? std::numeric_limits<double>::infinity()
                                 : merged.back().distance;
    one_shot_cells +=
        classifier.SelectAdditionalPartitions(query.vector, home, stale_kth)
            .size();
  }

  classifier.stats().Reset();
  for (const auto& query : queries) classifier.Score(query.vector);
  const auto stats = classifier.stats().Snapshot();
  EXPECT_LT(stats.additional_clusters_checked, one_shot_cells);
}

TEST(FastKnnTest, AllPositiveTrainingSet) {
  auto train = RandomPairs(50, 1.0, 18);
  for (auto& pair : train) pair.label = +1;
  FastKnnOptions options;
  options.num_clusters = 4;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);
  DistanceVector query;
  EXPECT_GT(classifier.Score(query), 0.0);
}

TEST(FastKnnTest, AllNegativeTrainingSet) {
  auto train = RandomPairs(50, 0.0, 19);
  for (auto& pair : train) pair.label = -1;
  FastKnnOptions options;
  options.num_clusters = 4;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);
  DistanceVector query;
  EXPECT_LT(classifier.Score(query), 0.0);
}

TEST(FastKnnTest, MajorityVoteOption) {
  const auto train = StructuredPairs(1000, 0.3, 20);
  FastKnnOptions options;
  options.k = 9;
  options.vote = ml::KnnVote::kMajority;
  options.num_clusters = 8;
  options.early_exit_all_negative = false;
  FastKnnClassifier classifier(options);
  classifier.Fit(train);
  DistanceVector query;
  const double score = classifier.Score(query);
  // A majority vote over 9 neighbours is an odd integer in [-9, 9].
  EXPECT_GE(score, -9.0);
  EXPECT_LE(score, 9.0);
  EXPECT_NEAR(std::fmod(std::abs(score), 2.0), 1.0, 1e-9);
}

TEST(FastKnnTest, ClassifyBeforeFitDies) {
  FastKnnClassifier classifier(FastKnnOptions{});
  DistanceVector query;
  EXPECT_DEATH((void)classifier.Classify(query), "before Fit");
}

TEST(FastKnnTest, EmptyTrainingSetDies) {
  FastKnnClassifier classifier(FastKnnOptions{});
  EXPECT_DEATH(classifier.Fit({}), "empty training set");
}

}  // namespace
}  // namespace adrdedup::core
