// Adversarial model-file coverage: FastKnnClassifier::Load must return a
// non-OK Status on any corrupt input — truncation at every byte, a bit
// flip at every byte, hostile section counts, out-of-range header fields
// — and must never abort the process or make a giant up-front
// allocation. Runs under the `sanitize` label so the ASan and TSan legs
// exercise it.
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fast_knn.h"
#include "util/random.h"

namespace adrdedup::core {
namespace {

using distance::DistanceVector;
using distance::kDistanceDims;
using distance::LabeledPair;

std::vector<LabeledPair> StructuredPairs(size_t n, double positive_rate,
                                         uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LabeledPair> pairs(n);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.Bernoulli(positive_rate);
    pairs[i].label = positive ? +1 : -1;
    pairs[i].pair = {static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1)};
    for (size_t d = 0; d < kDistanceDims; ++d) {
      pairs[i].vector[d] = positive ? rng.UniformDouble(0.0, 0.4)
                                    : rng.UniformDouble(0.1, 1.0);
    }
  }
  return pairs;
}

// Byte offsets of the header fields of the "ADRKNN1" format (magic is 8
// bytes including the terminator; every field is packed host-endian).
constexpr size_t kOffsetK = 8;
constexpr size_t kOffsetNumClusters = 16;
constexpr size_t kOffsetVote = 24;
constexpr size_t kOffsetNumCenters = 43;
constexpr size_t kOffsetFirstPartitionCount =
    51 + /*centers:*/ 4 * kDistanceDims * sizeof(double);

std::string SavedModelBytes() {
  FastKnnOptions options;
  options.k = 5;
  options.num_clusters = 4;
  FastKnnClassifier classifier(options);
  classifier.Fit(StructuredPairs(120, 0.05, 41));
  std::stringstream stream;
  EXPECT_TRUE(classifier.Save(stream).ok());
  return stream.str();
}

util::Result<FastKnnClassifier> LoadBytes(const std::string& bytes) {
  std::stringstream stream(bytes);
  return FastKnnClassifier::Load(stream);
}

template <typename T>
void PatchBytes(std::string* bytes, size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

TEST(ModelCorruptionTest, PristineModelLoads) {
  const std::string bytes = SavedModelBytes();
  auto loaded = LoadBytes(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Guards the offset constants above against format drift: zeroing the
  // field each one names must break the load in the expected way.
  EXPECT_EQ(loaded.value().options().k, 5u);
  EXPECT_EQ(loaded.value().options().num_clusters, 4u);
  // kOffsetFirstPartitionCount assumes exactly 4 serialized centers.
  ASSERT_EQ(loaded.value().num_partitions(), 4u);
}

TEST(ModelCorruptionTest, TruncationAtEveryByteIsRejected) {
  const std::string bytes = SavedModelBytes();
  ASSERT_GT(bytes.size(), 1000u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto loaded = LoadBytes(bytes.substr(0, len));
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
        << "prefix of " << len << " bytes: " << loaded.status().ToString();
  }
}

TEST(ModelCorruptionTest, BitFlipAtEveryByteNeverAborts) {
  const std::string bytes = SavedModelBytes();
  DistanceVector query;
  for (size_t d = 0; d < kDistanceDims; ++d) query[d] = 0.3;
  for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      std::string flipped = bytes;
      flipped[pos] = static_cast<char>(flipped[pos] ^ mask);
      auto loaded = LoadBytes(flipped);
      // A payload flip may still parse; a structural flip must come back
      // as a Status. Either way the process survives and an accepted
      // model stays usable.
      if (loaded.ok()) {
        (void)loaded.value().Score(query);
      } else {
        EXPECT_EQ(loaded.status().code(),
                  util::StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(ModelCorruptionTest, ZeroKRejected) {
  std::string bytes = SavedModelBytes();
  PatchBytes(&bytes, kOffsetK, uint64_t{0});
  auto loaded = LoadBytes(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ModelCorruptionTest, AbsurdKRejected) {
  std::string bytes = SavedModelBytes();
  PatchBytes(&bytes, kOffsetK, std::numeric_limits<uint64_t>::max());
  EXPECT_FALSE(LoadBytes(bytes).ok());
}

TEST(ModelCorruptionTest, ZeroClustersRejected) {
  std::string bytes = SavedModelBytes();
  PatchBytes(&bytes, kOffsetNumClusters, uint64_t{0});
  auto loaded = LoadBytes(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ModelCorruptionTest, AbsurdClusterCountRejected) {
  std::string bytes = SavedModelBytes();
  PatchBytes(&bytes, kOffsetNumClusters, uint64_t{1} << 40);
  EXPECT_FALSE(LoadBytes(bytes).ok());
}

TEST(ModelCorruptionTest, VoteEnumOutOfRangeRejected) {
  for (const uint8_t vote : {uint8_t{2}, uint8_t{7}, uint8_t{255}}) {
    std::string bytes = SavedModelBytes();
    PatchBytes(&bytes, kOffsetVote, vote);
    auto loaded = LoadBytes(bytes);
    ASSERT_FALSE(loaded.ok()) << "vote=" << int{vote};
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(ModelCorruptionTest, HostileCenterCountRejected) {
  std::string bytes = SavedModelBytes();
  PatchBytes(&bytes, kOffsetNumCenters, std::numeric_limits<uint64_t>::max());
  EXPECT_FALSE(LoadBytes(bytes).ok());
}

TEST(ModelCorruptionTest, HostilePairCountRejectedWithoutAllocating) {
  // A count of 2^62 used to hit pairs->resize(count) — an instant OOM /
  // bad_alloc abort. Now it must come back as InvalidArgument before any
  // proportional allocation happens.
  for (const uint64_t count :
       {uint64_t{1} << 62, std::numeric_limits<uint64_t>::max(),
        (uint64_t{1} << 31) + 1}) {
    std::string bytes = SavedModelBytes();
    PatchBytes(&bytes, kOffsetFirstPartitionCount, count);
    auto loaded = LoadBytes(bytes);
    ASSERT_FALSE(loaded.ok()) << "count=" << count;
    EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  }
}

TEST(ModelCorruptionTest, PlausiblePairCountOnTruncatedBodyRejected) {
  // A bounded-but-wrong count (claims more pairs than the stream holds)
  // must fail at the first missing field, with memory growth bounded by
  // the bytes actually present.
  std::string bytes = SavedModelBytes();
  PatchBytes(&bytes, kOffsetFirstPartitionCount, uint64_t{1} << 20);
  EXPECT_FALSE(LoadBytes(bytes).ok());
}

TEST(ModelCorruptionTest, EmptyAndMagicOnlyStreamsRejected) {
  EXPECT_FALSE(LoadBytes("").ok());
  EXPECT_FALSE(LoadBytes(std::string("ADRKNN1\0", 8)).ok());
}

}  // namespace
}  // namespace adrdedup::core
