#include "report/report_database.h"

#include <gtest/gtest.h>

namespace adrdedup::report {
namespace {

AdrReport MakeReport(const std::string& case_number,
                     const std::string& drug,
                     const std::string& adr) {
  AdrReport report;
  report.Set(FieldId::kCaseNumber, case_number);
  report.Set(FieldId::kGenericNameDescription, drug);
  report.Set(FieldId::kMeddraPtCode, adr);
  return report;
}

TEST(ReportDatabaseTest, AddAssignsArrivalIndices) {
  ReportDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.Add(MakeReport("C1", "DrugA", "Nausea")), 0u);
  EXPECT_EQ(db.Add(MakeReport("C2", "DrugB", "Rash")), 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.Get(0).case_number(), "C1");
  EXPECT_EQ(db.Get(1).case_number(), "C2");
}

TEST(ReportDatabaseTest, GetOutOfRangeDies) {
  ReportDatabase db;
  db.Add(MakeReport("C1", "DrugA", "Nausea"));
  EXPECT_DEATH({ (void)db.Get(5); }, "Check failed");
}

TEST(ReportDatabaseTest, ReportsSince) {
  ReportDatabase db;
  for (int i = 0; i < 5; ++i) {
    db.Add(MakeReport("C" + std::to_string(i), "D", "A"));
  }
  EXPECT_EQ(db.ReportsSince(3),
            (std::vector<ReportId>{3, 4}));
  EXPECT_EQ(db.ReportsSince(0).size(), 5u);
  EXPECT_TRUE(db.ReportsSince(5).empty());
}

TEST(ReportDatabaseTest, FindByCaseNumber) {
  ReportDatabase db;
  db.Add(MakeReport("C1", "D", "A"));
  db.Add(MakeReport("C2", "D", "A"));
  auto found = db.FindByCaseNumber("C2");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1u);
  EXPECT_FALSE(db.FindByCaseNumber("C9").ok());
}

TEST(ReportDatabaseTest, DuplicateCaseNumbersKeepFirstInIndex) {
  ReportDatabase db;
  db.Add(MakeReport("C1", "DrugA", "A"));
  db.Add(MakeReport("C1", "DrugB", "A"));
  auto found = db.FindByCaseNumber("C1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 0u);
  EXPECT_EQ(db.size(), 2u);  // both reports stored
}

TEST(ReportDatabaseTest, CountUniqueValuesPlain) {
  ReportDatabase db;
  db.Add(MakeReport("C1", "DrugA", "Nausea"));
  db.Add(MakeReport("C2", "DrugA", "Rash"));
  db.Add(MakeReport("C3", "DrugB", "Rash"));
  EXPECT_EQ(db.CountUniqueValues(FieldId::kGenericNameDescription,
                                 /*split_on_comma=*/false),
            2u);
}

TEST(ReportDatabaseTest, CountUniqueValuesSplitsLists) {
  ReportDatabase db;
  db.Add(MakeReport("C1", "DrugA,DrugB", "Nausea,Rash"));
  db.Add(MakeReport("C2", "DrugB, DrugC", "Rash"));
  EXPECT_EQ(db.CountUniqueValues(FieldId::kGenericNameDescription,
                                 /*split_on_comma=*/true),
            3u);
  EXPECT_EQ(db.CountUniqueValues(FieldId::kMeddraPtCode,
                                 /*split_on_comma=*/true),
            2u);
}

TEST(ReportDatabaseTest, CountUniqueSkipsMissing) {
  ReportDatabase db;
  db.Add(MakeReport("C1", "", "A"));
  db.Add(MakeReport("C2", "-", "A"));
  AdrReport not_known = MakeReport("C3", "", "A");
  not_known.Set(FieldId::kGenericNameDescription, std::string(kNotKnown));
  db.Add(std::move(not_known));
  EXPECT_EQ(db.CountUniqueValues(FieldId::kGenericNameDescription, true),
            0u);
}

}  // namespace
}  // namespace adrdedup::report
