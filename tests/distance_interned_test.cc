// The interned-token distance engine (DESIGN.md §5e) promises
// bit-identical DistanceVectors to the string-token implementation: the
// dictionary is a bijection, so the integer sweep counts the same
// intersections and the final division runs on the same operands. These
// tests pin that equivalence — randomized token sets, full feature
// records across missing-field policies and shingle settings, the
// galloping merge, and the serve-path incremental dictionary extension —
// plus the interned mode of the incremental blocking index.
#include "distance/interned.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/incremental_index.h"
#include "datagen/generator.h"
#include "distance/pairwise.h"
#include "distance/report_features.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace adrdedup::distance {
namespace {

std::vector<std::string> SortedUnique(std::vector<std::string> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

// Random sorted-unique token vector drawn from a pool of `vocabulary`
// synthetic tokens, so independent draws overlap partially.
std::vector<std::string> RandomTokenSet(util::Rng* rng, size_t max_size,
                                        size_t vocabulary) {
  const size_t size = rng->Uniform(max_size + 1);
  std::vector<std::string> tokens;
  tokens.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    tokens.push_back("tok" + std::to_string(rng->Uniform(vocabulary)));
  }
  return SortedUnique(tokens);
}

ReportFeatures FeaturesFromTokens(std::vector<std::string> tokens) {
  ReportFeatures f;
  f.description_tokens = std::move(tokens);
  return f;
}

TEST(TokenDictionaryTest, BuildAssignsLexicographicIds) {
  std::vector<ReportFeatures> features(2);
  features[0].drug_tokens = {"aspirin", "ibuprofen"};
  features[0].adr_tokens = {"nausea"};
  features[0].description_tokens = {"headache", "severe"};
  features[1].drug_tokens = {"aspirin"};
  features[1].description_tokens = {"dizzy"};

  const TokenDictionary dict = TokenDictionary::Build(features);
  ASSERT_EQ(dict.size(), 6u);
  // Ids follow lexicographic token order across all three field sets.
  std::vector<std::string> expected = {"aspirin", "dizzy",    "headache",
                                       "ibuprofen", "nausea", "severe"};
  for (uint32_t id = 0; id < expected.size(); ++id) {
    EXPECT_EQ(dict.TokenOf(id), expected[id]);
    EXPECT_EQ(dict.Find(expected[id]), id);
  }
  EXPECT_FALSE(dict.Find("absent").has_value());
}

TEST(TokenDictionaryTest, InternAppendsWithoutDisturbingExistingIds) {
  std::vector<ReportFeatures> features(1);
  features[0].description_tokens = {"alpha", "beta"};
  TokenDictionary dict = TokenDictionary::Build(features);
  ASSERT_EQ(dict.size(), 2u);

  // Serve path: fresh tokens append at the end — even tokens that sort
  // lexicographically before existing entries.
  EXPECT_EQ(dict.Intern("aardvark"), 2u);
  EXPECT_EQ(dict.Intern("zeta"), 3u);
  // Idempotent for both built and appended tokens.
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("aardvark"), 2u);
  EXPECT_EQ(dict.size(), 4u);
  EXPECT_EQ(dict.TokenOf(2), "aardvark");
}

TEST(InternedJaccardTest, EdgeCasesMatchStringPath) {
  TokenDictionary dict;
  const std::vector<std::string> empty;
  const std::vector<std::string> some = {"a", "b", "c"};
  const std::vector<std::string> other = {"x", "y"};

  const auto e = InternTokenSet(empty, &dict);
  const auto s = InternTokenSet(some, &dict);
  const auto o = InternTokenSet(other, &dict);

  EXPECT_EQ(InternedJaccardDistance(e, e), SortedJaccardDistance(empty, empty));
  EXPECT_EQ(InternedJaccardDistance(e, s), SortedJaccardDistance(empty, some));
  EXPECT_EQ(InternedJaccardDistance(s, e), SortedJaccardDistance(some, empty));
  EXPECT_EQ(InternedJaccardDistance(s, s), SortedJaccardDistance(some, some));
  EXPECT_EQ(InternedJaccardDistance(s, o), SortedJaccardDistance(some, other));
  EXPECT_EQ(InternedJaccardDistance(s, s), 0.0);
  EXPECT_EQ(InternedJaccardDistance(s, o), 1.0);
}

TEST(InternedJaccardTest, RandomizedEquivalenceWithStringPath) {
  util::Rng rng(20260806);
  TokenDictionary dict;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = RandomTokenSet(&rng, 40, 60);
    const auto b = RandomTokenSet(&rng, 40, 60);
    const auto ia = InternTokenSet(a, &dict);
    const auto ib = InternTokenSet(b, &dict);
    // Exact double equality — same operands, same division.
    ASSERT_EQ(InternedJaccardDistance(ia, ib), SortedJaccardDistance(a, b))
        << "trial " << trial;
  }
}

TEST(InternedJaccardTest, GallopingMergeMatchesLinearSweep) {
  util::Rng rng(99);
  TokenDictionary dict;
  for (int trial = 0; trial < 200; ++trial) {
    // Badly skewed sizes force the galloping path (small vs. large).
    auto small = RandomTokenSet(&rng, 4, 2000);
    auto large = RandomTokenSet(&rng, 600, 2000);
    const auto is = InternTokenSet(small, &dict);
    const auto il = InternTokenSet(large, &dict);
    ASSERT_EQ(InternedJaccardDistance(is, il),
              SortedJaccardDistance(small, large))
        << "trial " << trial;
    ASSERT_EQ(InternedJaccardDistance(il, is),
              SortedJaccardDistance(large, small))
        << "trial " << trial;
  }
}

TEST(SortedIdIntersectionTest, CountsExactly) {
  EXPECT_EQ(SortedIdIntersectionSize({}, {}), 0u);
  EXPECT_EQ(SortedIdIntersectionSize({1, 2, 3}, {}), 0u);
  EXPECT_EQ(SortedIdIntersectionSize({1, 2, 3}, {2, 3, 4}), 2u);
  // Skewed enough for galloping: every small element present.
  std::vector<uint32_t> large;
  for (uint32_t i = 0; i < 1000; ++i) large.push_back(i * 3);
  EXPECT_EQ(SortedIdIntersectionSize({3, 300, 2997}, large), 3u);
  // None present.
  EXPECT_EQ(SortedIdIntersectionSize({1, 301, 2998}, large), 0u);
}

struct InternedFixture {
  InternedFixture() {
    datagen::GeneratorConfig config;
    config.num_reports = 300;
    config.num_duplicate_pairs = 40;
    corpus = datagen::GenerateCorpus(config);
  }
  datagen::GeneratedCorpus corpus;
};

InternedFixture& Fixture() {
  static InternedFixture& fixture = *new InternedFixture();
  return fixture;
}

// The full ComputeDistanceVector must agree across missing-field
// policies and shingle settings — the satellite equivalence matrix.
TEST(InternedDistanceVectorTest, EquivalentAcrossPoliciesAndShingles) {
  auto& fixture = Fixture();
  util::Rng rng(7);
  for (const size_t shingles : {size_t{0}, size_t{3}}) {
    FeatureOptions feature_options;
    feature_options.string_field_shingles = shingles;
    const auto features =
        ExtractAllFeatures(fixture.corpus.db, feature_options);
    TokenDictionary dict = TokenDictionary::Build(features);
    const auto interned = InternAllFeatures(features, &dict);
    for (const MissingPolicy policy :
         {MissingPolicy::kCompareLiterally, MissingPolicy::kNeutral}) {
      PairwiseOptions options;
      options.missing_policy = policy;
      for (int trial = 0; trial < 400; ++trial) {
        const size_t a = rng.Uniform(features.size());
        const size_t b = rng.Uniform(features.size());
        ASSERT_EQ(ComputeDistanceVector(features[a], features[b], options),
                  ComputeDistanceVector(interned[a], interned[b], options))
            << "shingles=" << shingles << " trial=" << trial;
      }
    }
  }
}

TEST(InternedDistanceVectorTest, FieldWeightsApplyIdentically) {
  auto& fixture = Fixture();
  const auto features = ExtractAllFeatures(fixture.corpus.db);
  TokenDictionary dict = TokenDictionary::Build(features);
  const auto interned = InternAllFeatures(features, &dict);
  PairwiseOptions options;
  options.field_weights = {0.5, 2.0, 0.0, 1.0, 3.0, 0.25, 1.5};
  for (size_t i = 0; i + 1 < features.size(); i += 7) {
    ASSERT_EQ(ComputeDistanceVector(features[i], features[i + 1], options),
              ComputeDistanceVector(interned[i], interned[i + 1], options));
  }
}

// Serve path: interning a fresh batch against the live dictionary (ids
// appended out of lexicographic order) must produce the same distance
// vectors as rebuilding the dictionary over the grown corpus.
TEST(InternedDistanceVectorTest, IncrementalExtensionMatchesFullReencode) {
  auto& fixture = Fixture();
  const auto features = ExtractAllFeatures(fixture.corpus.db);
  const size_t base = features.size() * 3 / 4;
  const std::vector<ReportFeatures> base_features(features.begin(),
                                                  features.begin() + base);

  // Incremental: dictionary built on the base corpus, batch interned
  // one report at a time against the live dictionary.
  TokenDictionary live = TokenDictionary::Build(base_features);
  const size_t base_tokens = live.size();
  std::vector<InternedFeatures> interned =
      InternAllFeatures(base_features, &live);
  for (size_t i = base; i < features.size(); ++i) {
    interned.push_back(InternFeatures(features[i], &live));
  }
  EXPECT_GE(live.size(), base_tokens);

  // Reference: one dictionary over everything.
  TokenDictionary full = TokenDictionary::Build(features);
  const auto reencoded = InternAllFeatures(features, &full);

  util::Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t a = rng.Uniform(features.size());
    const size_t b = base + rng.Uniform(features.size() - base);
    ASSERT_EQ(ComputeDistanceVector(interned[a], interned[b]),
              ComputeDistanceVector(reencoded[a], reencoded[b]))
        << "trial " << trial;
    ASSERT_EQ(ComputeDistanceVector(interned[a], interned[b]),
              ComputeDistanceVector(features[a], features[b]))
        << "trial " << trial;
  }
}

TEST(InternAllFeaturesTest, ParallelEncodeMatchesSerial) {
  auto& fixture = Fixture();
  const auto features = ExtractAllFeatures(fixture.corpus.db);
  TokenDictionary serial_dict;
  const auto serial = InternAllFeatures(features, &serial_dict);
  util::ThreadPool pool(4);
  TokenDictionary parallel_dict;
  const auto parallel = InternAllFeatures(features, &parallel_dict, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial_dict.size(), parallel_dict.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].drug.ids, parallel[i].drug.ids);
    ASSERT_EQ(serial[i].adr.ids, parallel[i].adr.ids);
    ASSERT_EQ(serial[i].description.ids, parallel[i].description.ids);
    ASSERT_EQ(serial[i].description.signature,
              parallel[i].description.signature);
  }
}

TEST(InternedPairDistancesTest, BatchHelpersMatchStringPath) {
  auto& fixture = Fixture();
  const auto features = ExtractAllFeatures(fixture.corpus.db);
  TokenDictionary dict = TokenDictionary::Build(features);
  const auto interned = InternAllFeatures(features, &dict);
  util::Rng rng(5);
  std::vector<ReportPair> pairs;
  for (int i = 0; i < 300; ++i) {
    auto a = static_cast<report::ReportId>(rng.Uniform(features.size()));
    auto b = static_cast<report::ReportId>(rng.Uniform(features.size()));
    if (a == b) continue;
    pairs.push_back({std::min(a, b), std::max(a, b)});
  }
  EXPECT_EQ(ComputePairDistances(interned, pairs),
            ComputePairDistances(features, pairs));
}

// The interned mode of the incremental blocking index must emit exactly
// the candidates of the string mode over the same insertion stream.
TEST(IncrementalIndexInternedTest, CandidatesMatchStringMode) {
  auto& fixture = Fixture();
  const auto features = ExtractAllFeatures(fixture.corpus.db);
  TokenDictionary dict = TokenDictionary::Build(features);
  const auto interned = InternAllFeatures(features, &dict);

  for (const auto& keys : std::vector<std::vector<blocking::BlockingKey>>{
           {blocking::BlockingKey::kDrugToken},
           {blocking::BlockingKey::kAdrToken,
            blocking::BlockingKey::kOnsetDate},
           {blocking::BlockingKey::kDrugToken,
            blocking::BlockingKey::kSexAndAgeBand}}) {
    blocking::BlockingOptions options;
    options.keys = keys;
    options.max_block_size = 50;
    blocking::IncrementalBlockingIndex by_string(options);
    blocking::IncrementalBlockingIndex by_id(options);
    for (size_t i = 0; i < features.size(); ++i) {
      const auto id = static_cast<report::ReportId>(i);
      ASSERT_EQ(by_string.Candidates(features[i]),
                by_id.Candidates(interned[i]))
          << "report " << i;
      by_string.Add(id, features[i]);
      by_id.Add(id, interned[i]);
    }
    EXPECT_EQ(by_string.size(), by_id.size());
    EXPECT_EQ(by_string.num_blocks(), by_id.num_blocks());
    EXPECT_EQ(by_string.oversized_blocks(), by_id.oversized_blocks());
  }
}

TEST(SignatureTest, DisjointSetsWithSharedBitsStillExact) {
  // Force signature-bit collisions: many ids all but guarantee every
  // bit is set on both sides, so the prefilter cannot fire and the
  // exact sweep must still agree with the string path.
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (int i = 0; i < 300; ++i) {
    const std::string suffix = std::to_string(1000 + i);
    a.push_back(std::string("a").append(suffix));
    b.push_back(std::string("b").append(suffix));
  }
  a = SortedUnique(std::move(a));
  b = SortedUnique(std::move(b));
  TokenDictionary dict;
  const auto ia = InternTokenSet(a, &dict);
  const auto ib = InternTokenSet(b, &dict);
  EXPECT_NE(ia.signature & ib.signature, 0u);  // collisions present
  EXPECT_EQ(InternedJaccardDistance(ia, ib), 1.0);
  EXPECT_EQ(SortedJaccardDistance(a, b), 1.0);
}

TEST(SignatureTest, AdversarialIdsClusteredMod64NeverFalselyDisjoint) {
  // Adversarial layout for a naive `id & 63` signature bucketing: the
  // dictionary holds more tokens than signature bits (192 > 64) and each
  // probed pair of sets uses ids congruent mod 64, which a naive scheme
  // would collapse onto a single bit. The prefilter may only ever claim
  // *disjoint* sets disjoint: for every residue class, sets sharing a
  // token must keep a non-zero signature overlap (the shared id sets the
  // same bit on both sides) and the exact 1 - |I|/|U| result.
  std::vector<std::string> vocabulary;
  for (int i = 0; i < 192; ++i) {
    std::string name = std::to_string(i);
    name.insert(0, 3 - name.size(), '0');
    vocabulary.push_back("t" + name);  // zero-padded: id == rank
  }
  ReportFeatures seed;
  seed.description_tokens = vocabulary;
  const TokenDictionary dict = TokenDictionary::Build({seed});
  ASSERT_EQ(dict.size(), 192u);
  ASSERT_EQ(dict.Find("t000"), std::optional<uint32_t>(0u));
  ASSERT_EQ(dict.Find("t191"), std::optional<uint32_t>(191u));

  for (uint32_t r = 0; r < 64; ++r) {
    const std::vector<std::string> a = {vocabulary[r], vocabulary[r + 64]};
    const std::vector<std::string> b = {vocabulary[r + 64],
                                        vocabulary[r + 128]};
    const InternedTokenSet ia = InternTokenSet(a, dict);
    const InternedTokenSet ib = InternTokenSet(b, dict);
    // Shared id r + 64 => shared signature bit => the prefilter cannot
    // fire, no matter how the other ids alias.
    ASSERT_NE(ia.signature & ib.signature, 0u) << "residue " << r;
    const double expected = 1.0 - 1.0 / 3.0;
    ASSERT_EQ(InternedJaccardDistance(ia, ib), expected) << "residue " << r;
    ASSERT_EQ(SortedJaccardDistance(a, b), expected) << "residue " << r;

    // Genuinely disjoint sets in the same residue class must still be
    // exact (1.0) whether or not their signatures alias.
    const InternedTokenSet lone = InternTokenSet({vocabulary[r]}, dict);
    const InternedTokenSet rest =
        InternTokenSet({vocabulary[r + 64], vocabulary[r + 128]}, dict);
    ASSERT_EQ(InternedJaccardDistance(lone, rest), 1.0) << "residue " << r;
  }
}

TEST(FeaturesFromTokensTest, InternedSetSignatureCoversAllIds) {
  TokenDictionary dict;
  const auto set =
      InternTokenSet(FeaturesFromTokens({"x", "y", "z"}).description_tokens,
                     &dict);
  uint64_t expected = 0;
  for (const uint32_t id : set.ids) expected |= TokenSignatureBit(id);
  EXPECT_EQ(set.signature, expected);
}

}  // namespace
}  // namespace adrdedup::distance
