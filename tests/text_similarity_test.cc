#include "text/similarity.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace adrdedup::text {
namespace {

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
  EXPECT_EQ(LevenshteinDistance("atorvastatin", "atorvastatin calcium"), 8u);
}

TEST(LevenshteinTest, SymmetryProperty) {
  util::Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(4)));
    }
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      b.push_back(static_cast<char>('a' + rng.Uniform(4)));
    }
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
  }
}

TEST(LevenshteinTest, TriangleInequalityProperty) {
  util::Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      for (size_t i = 0; i < rng.Uniform(10); ++i) {
        str.push_back(static_cast<char>('a' + rng.Uniform(3)));
      }
    }
    const size_t ab = LevenshteinDistance(s[0], s[1]);
    const size_t bc = LevenshteinDistance(s[1], s[2]);
    const size_t ac = LevenshteinDistance(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

TEST(LevenshteinTest, BoundedByMaxLength) {
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < rng.Uniform(20); ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    for (size_t i = 0; i < rng.Uniform(20); ++i) {
      b.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    EXPECT_LE(LevenshteinDistance(a, b), std::max(a.size(), b.size()));
    EXPECT_GE(LevenshteinDistance(a, b),
              a.size() > b.size() ? a.size() - b.size()
                                  : b.size() - a.size());
  }
}

TEST(NormalizedLevenshteinTest, UnitRange) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abc", "xyz"), 1.0);
  EXPECT_NEAR(NormalizedLevenshtein("kitten", "sitting"), 3.0 / 7.0, 1e-12);
}

TEST(HammingTest, EqualLengthStrings) {
  EXPECT_EQ(HammingDistance("karolin", "kathrin"), std::optional<size_t>(3));
  EXPECT_EQ(HammingDistance("", ""), std::optional<size_t>(0));
  EXPECT_EQ(HammingDistance("abc", "abc"), std::optional<size_t>(0));
}

TEST(HammingTest, UnequalLengthsUndefined) {
  EXPECT_EQ(HammingDistance("ab", "abc"), std::nullopt);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"a"}), 1.0);
}

TEST(JaccardTest, DuplicateTokensIgnored) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b", "b"}),
                   1.0);
}

TEST(JaccardTest, DistanceComplementsSimilarity) {
  const std::vector<std::string> a = {"x", "y", "z"};
  const std::vector<std::string> b = {"y", "z", "w"};
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 1.0 - JaccardSimilarity(a, b));
}

TEST(JaccardTest, RangeAndSymmetryProperty) {
  util::Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> a;
    std::vector<std::string> b;
    for (size_t i = 0; i < rng.Uniform(8); ++i) {
      a.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(5))));
    }
    for (size_t i = 0; i < rng.Uniform(8); ++i) {
      b.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(5))));
    }
    const double s = JaccardSimilarity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_DOUBLE_EQ(s, JaccardSimilarity(b, a));
  }
}

TEST(JaccardCharsTest, CharacterSets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarityChars("abc", "bcd"), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarityChars("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarityChars("aaa", "a"), 1.0);
}

TEST(CosineTest, KnownValues) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({"a"}, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({"a"}, {}), 0.0);
  // ("a","b") vs ("a"): dot=1, norms sqrt(2) and 1.
  EXPECT_NEAR(CosineSimilarity({"a", "b"}, {"a"}), 1.0 / std::sqrt(2.0),
              1e-12);
}

TEST(CosineTest, TermFrequencyMatters) {
  // ("a","a","b") = (2,1); ("a","b","b") = (1,2): dot = 4, norms 5.
  EXPECT_NEAR(CosineSimilarity({"a", "a", "b"}, {"a", "b", "b"}), 4.0 / 5.0,
              1e-12);
}

TEST(DiceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a"}, {"a"}), 1.0);
}

TEST(JaroTest, KnownValues) {
  // Classic reference pairs.
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("JELLYFISH", "SMELLYFISH"), 0.896296, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, SymmetryAndRangeProperty) {
  util::Rng rng(10);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(5)));
    }
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      b.push_back(static_cast<char>('a' + rng.Uniform(5)));
    }
    const double s = JaroSimilarity(a, b);
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 1.0);
    ASSERT_DOUBLE_EQ(s, JaroSimilarity(b, a));
  }
}

TEST(JaroWinklerTest, PrefixBoost) {
  // Winkler only boosts: JW >= Jaro, strictly when a prefix is shared.
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
  EXPECT_GT(JaroWinklerSimilarity("atorvastatin", "atorvastatine"),
            JaroSimilarity("atorvastatin", "atorvastatine"));
  // No common prefix: no boost.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("xabc", "yabc"),
                   JaroSimilarity("xabc", "yabc"));
}

TEST(JaroWinklerTest, BoundedByOne) {
  util::Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < 1 + rng.Uniform(10); ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(3)));
    }
    for (size_t i = 0; i < 1 + rng.Uniform(10); ++i) {
      b.push_back(static_cast<char>('a' + rng.Uniform(3)));
    }
    const double jw = JaroWinklerSimilarity(a, b);
    ASSERT_GE(jw + 1e-12, JaroSimilarity(a, b));
    ASSERT_LE(jw, 1.0 + 1e-12);
  }
}

TEST(MetricRelationsTest, DiceGeJaccard) {
  util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::string> a;
    std::vector<std::string> b;
    for (size_t i = 0; i < 1 + rng.Uniform(6); ++i) {
      a.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(4))));
    }
    for (size_t i = 0; i < 1 + rng.Uniform(6); ++i) {
      b.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(4))));
    }
    EXPECT_GE(DiceSimilarity(a, b) + 1e-12, JaccardSimilarity(a, b));
  }
}

}  // namespace
}  // namespace adrdedup::text
