#include "ml/svm.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace adrdedup::ml {
namespace {

using distance::DistanceVector;
using distance::kDistanceDims;
using distance::LabeledPair;

// Linearly separable set: positives have small component sums, negatives
// large ones — the idealized duplicate geometry.
std::vector<LabeledPair> SeparableSet(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LabeledPair> pairs(n);
  for (auto& pair : pairs) {
    const bool positive = rng.Bernoulli(0.3);
    pair.label = positive ? +1 : -1;
    for (size_t d = 0; d < kDistanceDims; ++d) {
      pair.vector[d] = positive ? rng.UniformDouble(0.0, 0.25)
                                : rng.UniformDouble(0.65, 1.0);
    }
  }
  return pairs;
}

TEST(SvmTest, LearnsSeparableProblem) {
  const auto train = SeparableSet(2000, 1);
  SvmClassifier svm(SvmOptions{.epochs = 10});
  svm.Fit(train);
  const auto test = SeparableSet(300, 2);
  size_t correct = 0;
  for (const auto& example : test) {
    const int8_t predicted = svm.Score(example.vector) >= 0 ? +1 : -1;
    if (predicted == example.label) ++correct;
  }
  EXPECT_GT(correct, test.size() * 95 / 100);
}

TEST(SvmTest, ScoreDecreasesWithDistanceComponents) {
  const auto train = SeparableSet(2000, 3);
  SvmClassifier svm(SvmOptions{.epochs = 10});
  svm.Fit(train);
  DistanceVector similar;   // all zeros: identical reports
  DistanceVector different;
  for (size_t d = 0; d < kDistanceDims; ++d) different[d] = 1.0;
  EXPECT_GT(svm.Score(similar), svm.Score(different));
}

TEST(SvmTest, DeterministicInSeed) {
  const auto train = SeparableSet(500, 4);
  SvmClassifier a(SvmOptions{});
  SvmClassifier b(SvmOptions{});
  a.Fit(train);
  b.Fit(train);
  for (size_t d = 0; d < kDistanceDims; ++d) {
    EXPECT_DOUBLE_EQ(a.model().weights[d], b.model().weights[d]);
  }
  EXPECT_DOUBLE_EQ(a.model().bias, b.model().bias);
}

TEST(SvmTest, ModelNormBoundedByPegasosProjection) {
  const auto train = SeparableSet(1000, 5);
  SvmOptions options;
  options.lambda = 1e-2;
  SvmClassifier svm(options);
  svm.Fit(train);
  double norm_sq = svm.model().bias * svm.model().bias;
  for (double w : svm.model().weights) norm_sq += w * w;
  EXPECT_LE(norm_sq, 1.0 / options.lambda + 1e-9);
}

TEST(SvmTest, PositiveWeightShiftsDecisionTowardRecall) {
  // With heavy imbalance, up-weighting positives must not lower the
  // count of detected positives.
  util::Rng rng(6);
  std::vector<LabeledPair> train;
  for (int i = 0; i < 5000; ++i) {
    LabeledPair pair;
    const bool positive = i < 25;  // 0.5% positives
    pair.label = positive ? +1 : -1;
    for (size_t d = 0; d < kDistanceDims; ++d) {
      pair.vector[d] = positive ? rng.UniformDouble(0.0, 0.45)
                                : rng.UniformDouble(0.35, 1.0);
    }
    train.push_back(pair);
  }
  SvmClassifier plain(SvmOptions{});
  plain.Fit(train);
  SvmOptions weighted_options;
  weighted_options.positive_weight = 50.0;
  SvmClassifier weighted(weighted_options);
  weighted.Fit(train);

  size_t plain_hits = 0;
  size_t weighted_hits = 0;
  for (const auto& example : train) {
    if (example.label < 0) continue;
    if (plain.Score(example.vector) >= 0) ++plain_hits;
    if (weighted.Score(example.vector) >= 0) ++weighted_hits;
  }
  EXPECT_GE(weighted_hits, plain_hits);
}

TEST(SvmTest, ScoreAllMatchesScore) {
  const auto train = SeparableSet(400, 7);
  const auto queries = SeparableSet(30, 8);
  SvmClassifier svm(SvmOptions{});
  svm.Fit(train);
  const auto scores = svm.ScoreAll(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], svm.Score(queries[i].vector));
  }
}

TEST(SvmTest, EmptyTrainingDies) {
  SvmClassifier svm(SvmOptions{});
  EXPECT_DEATH(svm.Fit({}), "empty training set");
}

TEST(SvmModelTest, ScoreIsAffine) {
  SvmModel model;
  model.weights[0] = 2.0;
  model.weights[3] = -1.0;
  model.bias = 0.5;
  DistanceVector v;
  v[0] = 0.25;
  v[3] = 0.5;
  EXPECT_DOUBLE_EQ(model.Score(v), 0.5 + 2.0 * 0.25 - 1.0 * 0.5);
}

}  // namespace
}  // namespace adrdedup::ml
