// Unit tests for the request/response codec every screening front end
// shares (stdin CSV, binary frames, HTTP/JSON): column binding, field
// binding, logical CSV row stitching, the flat JSON object parser, and
// the two response formats.
#include "serve/request_codec.h"

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "report/field.h"
#include "report/report.h"
#include "serve/screening_service.h"

namespace adrdedup::serve {
namespace {

// ---------------------------------------------------------------------------
// ParseColumns / RowToReport

TEST(ParseColumnsTest, BindsKnownColumns) {
  auto columns = ParseColumns({"case_number", "sex", "onset_date"});
  ASSERT_TRUE(columns.ok()) << columns.status().ToString();
  EXPECT_EQ(columns.value(),
            (std::vector<report::FieldId>{report::FieldId::kCaseNumber,
                                          report::FieldId::kSex,
                                          report::FieldId::kOnsetDate}));
}

TEST(ParseColumnsTest, RejectsUnknownColumn) {
  auto columns = ParseColumns({"case_number", "no_such_column"});
  ASSERT_FALSE(columns.ok());
  EXPECT_EQ(columns.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ParseColumnsTest, RejectsDuplicateColumn) {
  auto columns = ParseColumns({"case_number", "sex", "case_number"});
  ASSERT_FALSE(columns.ok());
  EXPECT_EQ(columns.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RowToReportTest, BindsValuesByColumn) {
  auto columns = ParseColumns({"case_number", "sex"});
  ASSERT_TRUE(columns.ok());
  auto report = RowToReport(columns.value(), {"C42", "Female"});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().case_number(), "C42");
  EXPECT_EQ(report.value().sex(), "Female");
}

TEST(RowToReportTest, RejectsArityMismatch) {
  auto columns = ParseColumns({"case_number", "sex"});
  ASSERT_TRUE(columns.ok());
  auto report = RowToReport(columns.value(), {"C42"});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// FieldsToReport

TEST(FieldsToReportTest, BindsNamedFields) {
  auto report = FieldsToReport({{"case_number", "C7"},
                                {"generic_name_description", "ibuprofen"}});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().case_number(), "C7");
  EXPECT_EQ(report.value().drug_name(), "ibuprofen");
}

TEST(FieldsToReportTest, RejectsUnknownAndRepeatedFields) {
  EXPECT_EQ(FieldsToReport({{"bogus", "x"}}).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(
      FieldsToReport({{"sex", "Male"}, {"sex", "Female"}}).status().code(),
      util::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ReadLogicalCsvRow

TEST(ReadLogicalCsvRowTest, StitchesQuotedNewlines) {
  std::istringstream in("a,\"line one\nline two\",c\nnext,row,here\n");
  util::CsvRow row;
  auto got = ReadLogicalCsvRow(in, &row);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(got.value());
  EXPECT_EQ(row, (util::CsvRow{"a", "line one\nline two", "c"}));
  got = ReadLogicalCsvRow(in, &row);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  EXPECT_EQ(row, (util::CsvRow{"next", "row", "here"}));
  got = ReadLogicalCsvRow(in, &row);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value()) << "expected clean EOF";
}

TEST(ReadLogicalCsvRowTest, EmptyStreamIsCleanEof) {
  std::istringstream in("");
  util::CsvRow row;
  auto got = ReadLogicalCsvRow(in, &row);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

// ---------------------------------------------------------------------------
// ParseFlatJsonObject

TEST(ParseFlatJsonObjectTest, ParsesStringFields) {
  auto fields = ParseFlatJsonObject(
      "  {\"case_number\": \"C1\", \"sex\": \"Female\"} ");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields.value(),
            (std::vector<std::pair<std::string, std::string>>{
                {"case_number", "C1"}, {"sex", "Female"}}));
}

TEST(ParseFlatJsonObjectTest, ParsesEmptyObject) {
  auto fields = ParseFlatJsonObject("{}");
  ASSERT_TRUE(fields.ok());
  EXPECT_TRUE(fields.value().empty());
}

TEST(ParseFlatJsonObjectTest, DecodesEscapes) {
  auto fields = ParseFlatJsonObject(
      R"({"report_description": "say \"hi\"\n\t\\ \u00e9"})");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  ASSERT_EQ(fields.value().size(), 1u);
  EXPECT_EQ(fields.value()[0].second, "say \"hi\"\n\t\\ \xc3\xa9");
}

TEST(ParseFlatJsonObjectTest, RejectsMalformedInput) {
  for (const std::string_view bad : {
           std::string_view("not json"),
           std::string_view("[\"a\"]"),
           std::string_view("{\"a\": 1}"),          // non-string value
           std::string_view("{\"a\": \"b\"} tail"),  // trailing garbage
           std::string_view("{\"a\": \"b\""),        // unterminated
           std::string_view("{\"a\" \"b\"}"),        // missing colon
           std::string_view("{\"a\": \"\\ud800\"}"),  // surrogate escape
           std::string_view(""),
       }) {
    auto fields = ParseFlatJsonObject(bad);
    EXPECT_FALSE(fields.ok()) << "accepted: " << bad;
    EXPECT_EQ(fields.status().code(), util::StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Response formatting

ScreenResponse SampleResponse() {
  ScreenResponse response;
  ScreenMatch match;
  match.other = 3;
  match.other_case_number = "C3";
  match.score = 1.5;
  response.matches.push_back(match);
  match.other = 9;
  match.other_case_number = "C9";
  match.score = 0.25;
  response.matches.push_back(match);
  response.batch_size = 2;
  response.model_generation = 4;
  return response;
}

TEST(FormatMatchesCsvTest, OneLinePerMatch) {
  report::AdrReport report;
  report.Set(report::FieldId::kCaseNumber, "C1");
  const std::string csv = FormatMatchesCsv(report, SampleResponse());
  EXPECT_EQ(csv, "C1,C3," + std::to_string(1.5) + "\nC1,C9," +
                     std::to_string(0.25) + "\n");
}

TEST(FormatMatchesCsvTest, NoMatchesIsEmpty) {
  report::AdrReport report;
  report.Set(report::FieldId::kCaseNumber, "C1");
  EXPECT_EQ(FormatMatchesCsv(report, ScreenResponse{}), "");
}

TEST(ScreenResponseJsonTest, RoundTripsThroughOwnJsonParser) {
  report::AdrReport report;
  report.Set(report::FieldId::kCaseNumber, "C1");
  const std::string json = ScreenResponseJson(report, SampleResponse());
  EXPECT_NE(json.find("\"case_number\":\"C1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"expired\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"C3\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"C9\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"batch_size\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"model_generation\":4"), std::string::npos) << json;
}

TEST(ScreenResponseJsonTest, MarksExpired) {
  report::AdrReport report;
  report.Set(report::FieldId::kCaseNumber, "C1");
  ScreenResponse response;
  response.expired = true;
  const std::string json = ScreenResponseJson(report, response);
  EXPECT_NE(json.find("\"expired\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"matches\":[]"), std::string::npos) << json;
}

}  // namespace
}  // namespace adrdedup::serve
