#include "signal/prr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "report/field.h"

namespace adrdedup::signal {
namespace {

using report::AdrReport;
using report::FieldId;
using report::ReportDatabase;

AdrReport MakeReport(const std::string& drugs, const std::string& events) {
  AdrReport report;
  static int counter = 0;
  report.Set(FieldId::kCaseNumber, "C" + std::to_string(counter++));
  report.Set(FieldId::kGenericNameDescription, drugs);
  report.Set(FieldId::kMeddraPtCode, events);
  return report;
}

TEST(ContingencyTableTest, PrrHandComputed) {
  // a=8, b=92, c=10, d=890: PRR = (8/100) / (10/900) = 7.2.
  ContingencyTable table{8, 92, 10, 890};
  EXPECT_NEAR(table.Prr(), 7.2, 1e-12);
}

TEST(ContingencyTableTest, PrrEdgeCases) {
  EXPECT_DOUBLE_EQ((ContingencyTable{0, 10, 5, 100}).Prr(), 0.0);
  EXPECT_TRUE(std::isinf((ContingencyTable{3, 7, 0, 100}).Prr()));
  EXPECT_DOUBLE_EQ((ContingencyTable{0, 0, 0, 0}).Prr(), 0.0);
}

TEST(ContingencyTableTest, ChiSquareHandComputed) {
  // Classic 2x2: a=10 b=20 c=30 d=40. chi2 = n(ad-bc)^2/(r1 r2 c1 c2).
  ContingencyTable table{10, 20, 30, 40};
  const double expected =
      100.0 * (10.0 * 40 - 20.0 * 30) * (10.0 * 40 - 20.0 * 30) /
      (30.0 * 70.0 * 40.0 * 60.0);
  EXPECT_NEAR(table.ChiSquare(), expected, 1e-12);
}

TEST(ContingencyTableTest, ChiSquareEmptyMarginIsZero) {
  EXPECT_DOUBLE_EQ((ContingencyTable{0, 0, 10, 20}).ChiSquare(), 0.0);
  EXPECT_DOUBLE_EQ((ContingencyTable{5, 0, 10, 0}).ChiSquare(), 0.0);
}

TEST(ContingencyTableTest, EvansCriterion) {
  // Strong association, enough cases.
  EXPECT_TRUE((ContingencyTable{10, 10, 10, 1000}).IsSignal());
  // Too few co-reports.
  EXPECT_FALSE((ContingencyTable{2, 2, 2, 1000}).IsSignal());
  // No disproportionality.
  EXPECT_FALSE((ContingencyTable{10, 90, 100, 900}).IsSignal());
}

ReportDatabase TinyDatabase() {
  ReportDatabase db;
  // 4 cases of drugX with eventY, 6 of drugX with other events,
  // 5 of other drugs with eventY, 85 unrelated.
  for (int i = 0; i < 4; ++i) db.Add(MakeReport("DrugX", "EventY"));
  for (int i = 0; i < 6; ++i) db.Add(MakeReport("DrugX", "Other"));
  for (int i = 0; i < 5; ++i) db.Add(MakeReport("DrugZ", "EventY"));
  for (int i = 0; i < 85; ++i) db.Add(MakeReport("DrugZ", "Other"));
  return db;
}

TEST(PrrAnalyzerTest, TableMatchesConstruction) {
  const auto db = TinyDatabase();
  PrrAnalyzer analyzer(db);
  EXPECT_EQ(analyzer.num_cases(), 100u);
  const auto table = analyzer.Table("DrugX", "EventY");
  EXPECT_EQ(table.a, 4u);
  EXPECT_EQ(table.b, 6u);
  EXPECT_EQ(table.c, 5u);
  EXPECT_EQ(table.d, 85u);
  // PRR = (4/10) / (5/90) = 7.2.
  EXPECT_NEAR(table.Prr(), 7.2, 1e-12);
}

TEST(PrrAnalyzerTest, CaseInsensitiveLookups) {
  const auto db = TinyDatabase();
  PrrAnalyzer analyzer(db);
  EXPECT_EQ(analyzer.Table("drugx", "eventy").a, 4u);
  EXPECT_EQ(analyzer.Table("DRUGX", "EVENTY").a, 4u);
}

TEST(PrrAnalyzerTest, MultiValuedFieldsCountOncePerCase) {
  ReportDatabase db;
  db.Add(MakeReport("DrugA,DrugB", "E1,E2"));
  db.Add(MakeReport("DrugA,DrugA", "E1"));  // duplicate entry in list
  PrrAnalyzer analyzer(db);
  EXPECT_EQ(analyzer.Table("DrugA", "E1").a, 2u);
  EXPECT_EQ(analyzer.Table("DrugB", "E2").a, 1u);
}

TEST(PrrAnalyzerTest, DetectSignalsFindsPlantedAssociation) {
  const auto db = TinyDatabase();
  PrrAnalyzer analyzer(db);
  const auto signals = analyzer.DetectSignals(3);
  bool found = false;
  for (const auto& signal : signals) {
    if (signal.drug == "drugx" && signal.event == "eventy") {
      found = true;
      EXPECT_NEAR(signal.table.Prr(), 7.2, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PrrAnalyzerTest, SignalsSortedByPrrDescending) {
  const auto db = TinyDatabase();
  PrrAnalyzer analyzer(db);
  const auto signals = analyzer.DetectSignals(1);
  for (size_t i = 1; i < signals.size(); ++i) {
    EXPECT_GE(signals[i - 1].table.Prr(), signals[i].table.Prr());
  }
}

TEST(PrrAnalyzerTest, KeepListRestrictsCounting) {
  const auto db = TinyDatabase();
  // Drop three of the four DrugX+EventY cases (ids 1, 2, 3).
  std::vector<report::ReportId> keep;
  for (size_t i = 0; i < db.size(); ++i) {
    if (i == 1 || i == 2 || i == 3) continue;
    keep.push_back(static_cast<report::ReportId>(i));
  }
  PrrAnalyzer analyzer(db, keep);
  EXPECT_EQ(analyzer.num_cases(), 97u);
  EXPECT_EQ(analyzer.Table("DrugX", "EventY").a, 1u);
}

TEST(RepresentativesTest, DropsAllButSmallestGroupMember) {
  const std::vector<std::vector<uint32_t>> groups = {{1, 4, 7}, {2, 3}};
  const auto keep = RepresentativesFromGroups(groups, 10);
  EXPECT_EQ(keep, (std::vector<report::ReportId>{0, 1, 2, 5, 6, 8, 9}));
}

TEST(RepresentativesTest, NoGroupsKeepsEverything) {
  EXPECT_EQ(RepresentativesFromGroups({}, 3).size(), 3u);
}

TEST(SignalDistortionTest, DuplicatesInflatePrr) {
  // The paper's motivating scenario: duplicated reports inflate the
  // duplicated drug-event combinations; collapsing duplicate groups
  // restores the statistic.
  ReportDatabase db;
  // Background: 200 unrelated cases, 12 EventY cases under other drugs
  // (so PRR stays finite), 5 genuine DrugX+EventY cases, 45 DrugX cases
  // with other events.
  for (int i = 0; i < 200; ++i) db.Add(MakeReport("DrugZ", "Other"));
  for (int i = 0; i < 12; ++i) db.Add(MakeReport("DrugZ", "EventY"));
  for (int i = 0; i < 5; ++i) db.Add(MakeReport("DrugX", "EventY"));
  for (int i = 0; i < 45; ++i) db.Add(MakeReport("DrugX", "Other"));
  // Duplicates: each of the 5 DrugX+EventY cases submitted 3 extra times.
  std::vector<std::vector<uint32_t>> groups;
  for (int i = 0; i < 5; ++i) {
    std::vector<uint32_t> group = {static_cast<uint32_t>(212 + i)};
    for (int copy = 0; copy < 3; ++copy) {
      group.push_back(static_cast<uint32_t>(db.size()));
      db.Add(MakeReport("DrugX", "EventY"));
    }
    groups.push_back(group);
  }

  PrrAnalyzer raw(db);
  PrrAnalyzer deduped(db, RepresentativesFromGroups(groups, db.size()));
  const double inflated = raw.Table("DrugX", "EventY").Prr();
  const double corrected = deduped.Table("DrugX", "EventY").Prr();
  EXPECT_GT(inflated, corrected * 1.5);
  EXPECT_EQ(deduped.Table("DrugX", "EventY").a, 5u);
  EXPECT_EQ(raw.Table("DrugX", "EventY").a, 20u);
}

TEST(PrrAnalyzerTest, WorksOnGeneratedCorpus) {
  datagen::GeneratorConfig config;
  config.num_reports = 800;
  config.num_duplicate_pairs = 50;
  config.num_drugs = 100;
  config.num_adrs = 150;
  auto corpus = datagen::GenerateCorpus(config);
  PrrAnalyzer analyzer(corpus.db);
  EXPECT_EQ(analyzer.num_cases(), 800u);
  const auto signals = analyzer.DetectSignals(3);
  // Zipf-skewed co-occurrence yields at least some signals; every one
  // satisfies the criterion by construction.
  for (const auto& signal : signals) {
    EXPECT_TRUE(signal.table.IsSignal());
    EXPECT_GE(signal.table.a, 3u);
  }
}

}  // namespace
}  // namespace adrdedup::signal
