#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace adrdedup::eval {
namespace {

TEST(ConfusionTest, CountsAllQuadrants) {
  const std::vector<double> scores = {0.9, 0.8, 0.3, 0.1};
  const std::vector<int8_t> labels = {+1, -1, +1, -1};
  const auto counts = Confusion(scores, labels, 0.5);
  EXPECT_EQ(counts.true_positives, 1u);
  EXPECT_EQ(counts.false_positives, 1u);
  EXPECT_EQ(counts.false_negatives, 1u);
  EXPECT_EQ(counts.true_negatives, 1u);
}

TEST(ConfusionTest, PrecisionRecallF1) {
  ConfusionCounts counts;
  counts.true_positives = 8;
  counts.false_positives = 2;
  counts.false_negatives = 2;
  counts.true_negatives = 88;
  EXPECT_DOUBLE_EQ(counts.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(counts.Recall(), 0.8);
  EXPECT_DOUBLE_EQ(counts.F1(), 0.8);
}

TEST(ConfusionTest, DegenerateCases) {
  ConfusionCounts none;
  EXPECT_DOUBLE_EQ(none.Precision(), 1.0);  // no detections, no errors
  EXPECT_DOUBLE_EQ(none.Recall(), 1.0);     // no positives to find
  ConfusionCounts all_missed;
  all_missed.false_negatives = 5;
  EXPECT_DOUBLE_EQ(all_missed.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(all_missed.F1(), 0.0);
}

TEST(ConfusionTest, ThresholdSweepMonotonicity) {
  util::Rng rng(1);
  std::vector<double> scores;
  std::vector<int8_t> labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(rng.UniformDouble(-1, 1));
    labels.push_back(rng.Bernoulli(0.1) ? +1 : -1);
  }
  // Raising theta can only shrink the detected set.
  uint64_t previous_detected = scores.size() + 1;
  for (double theta : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    const auto counts = Confusion(scores, labels, theta);
    const uint64_t detected =
        counts.true_positives + counts.false_positives;
    EXPECT_LE(detected, previous_detected);
    previous_detected = detected;
  }
}

TEST(PrCurveTest, PerfectClassifierHasAuprOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int8_t> labels = {+1, +1, -1, -1};
  EXPECT_DOUBLE_EQ(Aupr(scores, labels), 1.0);
}

TEST(PrCurveTest, InvertedClassifierNearZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int8_t> labels = {+1, +1, -1, -1};
  EXPECT_LT(Aupr(scores, labels), 0.5);
}

TEST(PrCurveTest, RandomScoresApproachPositiveRate) {
  util::Rng rng(2);
  std::vector<double> scores;
  std::vector<int8_t> labels;
  const double rate = 0.2;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.UniformDouble());
    labels.push_back(rng.Bernoulli(rate) ? +1 : -1);
  }
  EXPECT_NEAR(Aupr(scores, labels), rate, 0.03);
}

TEST(PrCurveTest, KnownHandComputedCurve) {
  // Descending scores: labels +, -, +, -.
  const std::vector<double> scores = {4, 3, 2, 1};
  const std::vector<int8_t> labels = {+1, -1, +1, -1};
  const auto curve = ComputePrCurve(scores, labels);
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve.points[2].precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(curve.points[2].recall, 1.0);
  // AUPR = 0.5 * 1.0 + 0.5 * (2/3).
  EXPECT_NEAR(curve.aupr, 0.5 + 0.5 * 2.0 / 3.0, 1e-12);
}

TEST(PrCurveTest, TiedScoresCollapseToOneStep) {
  const std::vector<double> scores = {1, 1, 1, 1};
  const std::vector<int8_t> labels = {+1, -1, +1, -1};
  const auto curve = ComputePrCurve(scores, labels);
  ASSERT_EQ(curve.points.size(), 1u);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve.points[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.aupr, 0.5);
}

TEST(PrCurveTest, RecallMonotonicAlongCurve) {
  util::Rng rng(3);
  std::vector<double> scores;
  std::vector<int8_t> labels;
  for (int i = 0; i < 1000; ++i) {
    scores.push_back(rng.Gaussian());
    labels.push_back(rng.Bernoulli(0.05) ? +1 : -1);
  }
  const auto curve = ComputePrCurve(scores, labels);
  for (size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].recall, curve.points[i - 1].recall);
    EXPECT_LE(curve.points[i].threshold, curve.points[i - 1].threshold);
  }
  EXPECT_DOUBLE_EQ(curve.points.back().recall, 1.0);
}

TEST(PrCurveTest, AuprWithinUnitInterval) {
  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> scores;
    std::vector<int8_t> labels;
    bool any_positive = false;
    for (int i = 0; i < 200; ++i) {
      scores.push_back(rng.Gaussian());
      const bool positive = rng.Bernoulli(0.3);
      any_positive |= positive;
      labels.push_back(positive ? +1 : -1);
    }
    if (!any_positive) labels[0] = +1;
    const double aupr = Aupr(scores, labels);
    EXPECT_GE(aupr, 0.0);
    EXPECT_LE(aupr, 1.0);
  }
}

TEST(PrCurveTest, BetterSeparationHigherAupr) {
  util::Rng rng(5);
  auto make = [&](double separation) {
    std::vector<double> scores;
    std::vector<int8_t> labels;
    for (int i = 0; i < 2000; ++i) {
      const bool positive = rng.Bernoulli(0.05);
      labels.push_back(positive ? +1 : -1);
      scores.push_back(rng.Gaussian() + (positive ? separation : 0.0));
    }
    return Aupr(scores, labels);
  };
  EXPECT_GT(make(3.0), make(0.5));
}

TEST(RocCurveTest, PerfectClassifier) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int8_t> labels = {+1, +1, -1, -1};
  EXPECT_DOUBLE_EQ(Auroc(scores, labels), 1.0);
}

TEST(RocCurveTest, RandomScoresNearHalf) {
  util::Rng rng(6);
  std::vector<double> scores;
  std::vector<int8_t> labels;
  for (int i = 0; i < 20000; ++i) {
    scores.push_back(rng.UniformDouble());
    labels.push_back(rng.Bernoulli(0.2) ? +1 : -1);
  }
  EXPECT_NEAR(Auroc(scores, labels), 0.5, 0.02);
}

TEST(RocCurveTest, KnownHandComputedAuc) {
  // Descending: +, -, +, -. ROC points: (0,.5) (".5,.5") (.5,1) (1,1).
  const std::vector<double> scores = {4, 3, 2, 1};
  const std::vector<int8_t> labels = {+1, -1, +1, -1};
  const auto curve = ComputeRocCurve(scores, labels);
  ASSERT_EQ(curve.points.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.points[0].true_positive_rate, 0.5);
  EXPECT_DOUBLE_EQ(curve.points[0].false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.auc, 0.75);
}

TEST(RocCurveTest, CurveEndsAtOneOne) {
  util::Rng rng(7);
  std::vector<double> scores;
  std::vector<int8_t> labels;
  for (int i = 0; i < 500; ++i) {
    scores.push_back(rng.Gaussian());
    labels.push_back(rng.Bernoulli(0.3) ? +1 : -1);
  }
  const auto curve = ComputeRocCurve(scores, labels);
  EXPECT_DOUBLE_EQ(curve.points.back().false_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.back().true_positive_rate, 1.0);
}

TEST(RocCurveTest, RocFlattersImbalancedData) {
  // The Davis & Goadrich [4] argument the paper invokes for choosing
  // AUPR: with 0.1% positives, a classifier that ranks well overall but
  // admits many absolute false positives still shows a near-perfect ROC
  // while its precision-recall area exposes the problem.
  util::Rng rng(8);
  std::vector<double> scores;
  std::vector<int8_t> labels;
  for (int i = 0; i < 100000; ++i) {
    const bool positive = i < 100;  // 0.1%
    labels.push_back(positive ? +1 : -1);
    scores.push_back(positive ? rng.Gaussian(3.0, 1.0)
                              : rng.Gaussian(0.0, 1.0));
  }
  const double auroc = Auroc(scores, labels);
  const double aupr = Aupr(scores, labels);
  EXPECT_GT(auroc, 0.97);       // looks near-perfect
  EXPECT_LT(aupr, auroc - 0.2); // AUPR reveals the false-positive load
}

TEST(RocCurveTest, MissingClassDies) {
  EXPECT_DEATH((void)Auroc({1.0, 2.0}, {+1, +1}), "negative example");
  EXPECT_DEATH((void)Auroc({1.0, 2.0}, {-1, -1}), "positive example");
}

TEST(PrCurveTest, NoPositivesDies) {
  EXPECT_DEATH((void)Aupr({1.0, 2.0}, {-1, -1}), "positive");
}

TEST(PrCurveTest, SizeMismatchDies) {
  EXPECT_DEATH((void)Aupr({1.0}, {+1, -1}), "Check failed");
}

}  // namespace
}  // namespace adrdedup::eval
