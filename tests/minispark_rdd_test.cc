#include "minispark/rdd.h"

#include <numeric>
#include <string>

#include <gtest/gtest.h>

namespace adrdedup::minispark {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

class RddTest : public ::testing::Test {
 protected:
  SparkContext ctx_{SparkContext::Config{.num_executors = 4}};
};

TEST_F(RddTest, ParallelizeCollectRoundTrip) {
  const auto data = Iota(100);
  auto rdd = ctx_.Parallelize(data, 7);
  EXPECT_EQ(rdd.NumPartitions(), 7u);
  EXPECT_EQ(rdd.Collect(), data);
}

TEST_F(RddTest, ParallelizeEmptyCollection) {
  auto rdd = ctx_.Parallelize(std::vector<int>{}, 3);
  EXPECT_EQ(rdd.Count(), 0u);
  EXPECT_TRUE(rdd.Collect().empty());
}

TEST_F(RddTest, ParallelizeMorePartitionsThanRecords) {
  auto rdd = ctx_.Parallelize(Iota(3), 10);
  EXPECT_EQ(rdd.NumPartitions(), 10u);
  EXPECT_EQ(rdd.Collect(), Iota(3));
}

TEST_F(RddTest, DefaultParallelismUsed) {
  auto rdd = ctx_.Parallelize(Iota(100));
  EXPECT_EQ(rdd.NumPartitions(), ctx_.default_parallelism());
}

TEST_F(RddTest, GlomPreservesPartitionStructure) {
  auto rdd = ctx_.Parallelize(Iota(10), 3);
  const auto parts = rdd.GlomCollect();
  ASSERT_EQ(parts.size(), 3u);
  std::vector<int> flattened;
  for (const auto& part : parts) {
    flattened.insert(flattened.end(), part.begin(), part.end());
  }
  EXPECT_EQ(flattened, Iota(10));
}

TEST_F(RddTest, MapMatchesSequential) {
  auto rdd = ctx_.Parallelize(Iota(50), 4);
  auto squared = rdd.Map<int>([](int x) { return x * x; });
  std::vector<int> expected;
  for (int x : Iota(50)) expected.push_back(x * x);
  EXPECT_EQ(squared.Collect(), expected);
}

TEST_F(RddTest, MapChangesType) {
  auto rdd = ctx_.Parallelize(Iota(5), 2);
  auto strings =
      rdd.Map<std::string>([](int x) { return std::to_string(x); });
  EXPECT_EQ(strings.Collect(),
            (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST_F(RddTest, FilterMatchesSequential) {
  auto rdd = ctx_.Parallelize(Iota(100), 5);
  auto evens = rdd.Filter([](int x) { return x % 2 == 0; });
  EXPECT_EQ(evens.Count(), 50u);
  for (int x : evens.Collect()) EXPECT_EQ(x % 2, 0);
}

TEST_F(RddTest, FlatMapExpandsRecords) {
  auto rdd = ctx_.Parallelize(Iota(5), 2);
  auto repeated = rdd.FlatMap<int>([](int x) {
    return std::vector<int>(static_cast<size_t>(x), x);
  });
  EXPECT_EQ(repeated.Collect(),
            (std::vector<int>{1, 2, 2, 3, 3, 3, 4, 4, 4, 4}));
}

TEST_F(RddTest, MapPartitionsWithIndexSeesWholePartitions) {
  auto rdd = ctx_.Parallelize(Iota(10), 2);
  auto sizes = rdd.MapPartitionsWithIndex<size_t>(
      [](size_t, const std::vector<int>& part) {
        return std::vector<size_t>{part.size()};
      });
  const auto collected = sizes.Collect();
  ASSERT_EQ(collected.size(), 2u);
  EXPECT_EQ(collected[0] + collected[1], 10u);
}

TEST_F(RddTest, UnionConcatenates) {
  auto a = ctx_.Parallelize(Iota(5), 2);
  auto b = ctx_.Parallelize(std::vector<int>{100, 101}, 1);
  auto u = a.Union(b);
  EXPECT_EQ(u.NumPartitions(), 3u);
  EXPECT_EQ(u.Collect(), (std::vector<int>{0, 1, 2, 3, 4, 100, 101}));
}

TEST_F(RddTest, CartesianProducesAllPairs) {
  auto a = ctx_.Parallelize(std::vector<int>{1, 2}, 2);
  auto b = ctx_.Parallelize(std::vector<int>{10, 20, 30}, 2);
  auto cart = a.Cartesian(b);
  EXPECT_EQ(cart.Count(), 6u);
  auto pairs = cart.Collect();
  EXPECT_EQ(pairs[0], (std::pair<int, int>{1, 10}));
}

TEST_F(RddTest, RepartitionKeepsRecords) {
  auto rdd = ctx_.Parallelize(Iota(20), 2).Repartition(5);
  EXPECT_EQ(rdd.NumPartitions(), 5u);
  auto collected = rdd.Collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, Iota(20));
}

TEST_F(RddTest, RepartitionCountsAsShuffle) {
  ctx_.metrics().Reset();
  ctx_.Parallelize(Iota(30), 3).Repartition(6).Count();
  const auto snapshot = ctx_.metrics().Snapshot();
  EXPECT_EQ(snapshot.shuffles_performed, 1u);
  EXPECT_EQ(snapshot.shuffle_records_written, 30u);
  EXPECT_GT(snapshot.shuffle_bytes_written, 0u);
}

TEST_F(RddTest, ReduceSumsEverything) {
  auto rdd = ctx_.Parallelize(Iota(101), 8);
  EXPECT_EQ(rdd.Reduce(0, [](int a, int b) { return a + b; }), 5050);
}

TEST_F(RddTest, AggregateMatchesSequentialFold) {
  auto rdd = ctx_.Parallelize(Iota(100), 6);
  const auto [count, sum] = rdd.Aggregate<std::pair<int, long>>(
      {0, 0L},
      [](std::pair<int, long> acc, int x) {
        return std::pair<int, long>{acc.first + 1, acc.second + x};
      },
      [](std::pair<int, long> a, std::pair<int, long> b) {
        return std::pair<int, long>{a.first + b.first,
                                    a.second + b.second};
      });
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sum, 4950L);
}

TEST_F(RddTest, TakeReturnsPrefix) {
  auto rdd = ctx_.Parallelize(Iota(100), 10);
  EXPECT_EQ(rdd.Take(5), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(rdd.Take(0).size(), 0u);
  EXPECT_EQ(rdd.Take(1000).size(), 100u);
}

TEST_F(RddTest, KeyByBuildsPairs) {
  auto rdd = ctx_.Parallelize(Iota(6), 2);
  auto keyed = rdd.KeyBy<int>([](int x) { return x % 2; });
  const auto pairs = keyed.Collect();
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[3], (std::pair<int, int>{1, 3}));
}

TEST_F(RddTest, ChainedTransformationsStayLazyUntilAction) {
  ctx_.metrics().Reset();
  auto rdd = ctx_.Parallelize(Iota(10), 2)
                 .Map<int>([](int x) { return x + 1; })
                 .Filter([](int x) { return x > 5; });
  EXPECT_EQ(ctx_.metrics().Snapshot().tasks_launched, 0u);
  EXPECT_EQ(rdd.Count(), 5u);
  EXPECT_GT(ctx_.metrics().Snapshot().tasks_launched, 0u);
}

TEST_F(RddTest, ResultsIndependentOfExecutorCount) {
  SparkContext one(SparkContext::Config{.num_executors = 1});
  SparkContext many(SparkContext::Config{.num_executors = 8});
  auto compute = [](SparkContext* ctx) {
    return ctx->Parallelize(Iota(500), 13)
        .Map<int>([](int x) { return 3 * x + 1; })
        .Filter([](int x) { return x % 7 != 0; })
        .Collect();
  };
  EXPECT_EQ(compute(&one), compute(&many));
}

}  // namespace
}  // namespace adrdedup::minispark
