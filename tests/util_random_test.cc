#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace adrdedup::util {
namespace {

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(&state);
  const uint64_t second = SplitMix64(&state);
  EXPECT_NE(first, second);
  // Reference values of SplitMix64 seeded with 0.
  uint64_t again = 0;
  EXPECT_EQ(SplitMix64(&again), first);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// Property sweep: Uniform(bound) stays in range for many bounds/seeds.
class RngUniformProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(RngUniformProperty, InRangeAndDeterministic) {
  const auto [seed, bound] = GetParam();
  Rng a(seed);
  Rng b(seed);
  for (int i = 0; i < 500; ++i) {
    const uint64_t va = a.Uniform(bound);
    ASSERT_LT(va, bound);
    ASSERT_EQ(va, b.Uniform(bound));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngUniformProperty,
    ::testing::Combine(::testing::Values(1u, 42u, 31337u),
                       ::testing::Values(1u, 2u, 7u, 256u, 1000003u)));

}  // namespace
}  // namespace adrdedup::util
