// The incremental posting-list index must agree with the batch
// GenerateCandidates sweep when no block-size cap is in play (the one
// documented divergence), and keep its accounting and ordering
// guarantees as reports stream in.
#include "blocking/incremental_index.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocking.h"
#include "datagen/generator.h"
#include "distance/pair_dataset.h"

namespace adrdedup::blocking {
namespace {

using distance::PairKey;

struct BlockingFixture {
  BlockingFixture() {
    datagen::GeneratorConfig config;
    config.num_reports = 400;
    config.num_duplicate_pairs = 30;
    config.num_drugs = 60;
    config.num_adrs = 90;
    corpus = datagen::GenerateCorpus(config);
    features = distance::ExtractAllFeatures(corpus.db);
  }
  datagen::GeneratedCorpus corpus;
  std::vector<distance::ReportFeatures> features;
};

BlockingFixture& Fixture() {
  static BlockingFixture& fixture = *new BlockingFixture();
  return fixture;
}

// Streams every report through the index (probe-then-insert, the serving
// order) and returns the emitted pair set.
std::set<uint64_t> StreamPairs(
    const std::vector<distance::ReportFeatures>& features,
    const BlockingOptions& options) {
  IncrementalBlockingIndex index(options);
  std::set<uint64_t> pairs;
  for (size_t i = 0; i < features.size(); ++i) {
    const auto id = static_cast<report::ReportId>(i);
    for (report::ReportId other : index.Candidates(features[i])) {
      pairs.insert(PairKey({std::min(id, other), std::max(id, other)}));
    }
    index.Add(id, features[i]);
  }
  return pairs;
}

TEST(IncrementalBlockingIndexTest, MatchesBatchGeneratorWithoutSizeCap) {
  auto& fixture = Fixture();
  for (const auto& keys : std::vector<std::vector<BlockingKey>>{
           {BlockingKey::kDrugToken},
           {BlockingKey::kAdrToken},
           {BlockingKey::kDrugToken, BlockingKey::kAdrToken,
            BlockingKey::kOnsetDate, BlockingKey::kSexAndAgeBand}}) {
    BlockingOptions options;
    options.keys = keys;
    options.max_block_size = 0;  // the regime where semantics coincide

    std::set<uint64_t> batch;
    for (const auto& pair : GenerateCandidates(fixture.features, options).pairs) {
      batch.insert(PairKey(pair));
    }
    const std::set<uint64_t> streamed = StreamPairs(fixture.features, options);
    ASSERT_FALSE(batch.empty());
    EXPECT_EQ(streamed, batch) << "key set size " << keys.size();
  }
}

TEST(IncrementalBlockingIndexTest, CandidatesAreSortedAndDeduplicated) {
  auto& fixture = Fixture();
  BlockingOptions options;
  options.keys = {BlockingKey::kDrugToken, BlockingKey::kAdrToken};
  options.max_block_size = 0;
  IncrementalBlockingIndex index(options);
  for (size_t i = 0; i + 1 < fixture.features.size(); ++i) {
    index.Add(static_cast<report::ReportId>(i), fixture.features[i]);
  }
  const auto candidates =
      index.Candidates(fixture.features.back());
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_EQ(std::adjacent_find(candidates.begin(), candidates.end()),
            candidates.end());
  for (report::ReportId id : candidates) {
    EXPECT_LT(id, fixture.features.size() - 1);  // only inserted ids
  }
}

TEST(IncrementalBlockingIndexTest, ProbeDoesNotInsert) {
  auto& fixture = Fixture();
  IncrementalBlockingIndex index;
  index.Add(0, fixture.features[0]);
  const size_t blocks = index.num_blocks();
  (void)index.Candidates(fixture.features[1]);
  (void)index.Candidates(fixture.features[1]);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.num_blocks(), blocks);
}

TEST(IncrementalBlockingIndexTest, OversizedBlocksStopYieldingCandidates) {
  // Ten reports sharing one drug token with a cap of 4: once the posting
  // list passes the cap, later arrivals must not probe it.
  auto& fixture = Fixture();
  ASSERT_FALSE(fixture.features[0].drug_tokens.empty());
  BlockingOptions options;
  options.keys = {BlockingKey::kDrugToken};
  options.max_block_size = 4;
  IncrementalBlockingIndex index(options);
  std::vector<distance::ReportFeatures> clones(10, fixture.features[0]);
  size_t last_candidates = 0;
  for (size_t i = 0; i < clones.size(); ++i) {
    last_candidates = index.Candidates(clones[i]).size();
    index.Add(static_cast<report::ReportId>(i), clones[i]);
  }
  EXPECT_EQ(last_candidates, 0u)
      << "a block past the cap kept serving candidates";
  EXPECT_GE(index.oversized_blocks(), 1u);

  // Unrelated keys still work: a fresh report outside the hot block pairs
  // normally.
  BlockingOptions uncapped;
  uncapped.keys = {BlockingKey::kDrugToken};
  uncapped.max_block_size = 0;
  IncrementalBlockingIndex open_index(uncapped);
  for (size_t i = 0; i < clones.size(); ++i) {
    open_index.Add(static_cast<report::ReportId>(i), clones[i]);
  }
  EXPECT_EQ(open_index.Candidates(clones[0]).size(), clones.size());
  EXPECT_EQ(open_index.oversized_blocks(), 0u);
}

TEST(IncrementalBlockingIndexTest, AccountingTracksInsertions) {
  auto& fixture = Fixture();
  BlockingOptions options;
  options.keys = {BlockingKey::kDrugToken, BlockingKey::kAdrToken};
  IncrementalBlockingIndex index(options);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.num_blocks(), 0u);
  for (size_t i = 0; i < 50; ++i) {
    index.Add(static_cast<report::ReportId>(i), fixture.features[i]);
  }
  EXPECT_EQ(index.size(), 50u);
  EXPECT_GT(index.num_blocks(), 0u);
}

}  // namespace
}  // namespace adrdedup::blocking
