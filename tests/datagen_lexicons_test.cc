#include "datagen/lexicons.h"

#include <set>

#include <gtest/gtest.h>

namespace adrdedup::datagen {
namespace {

class LexiconSizeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(LexiconSizeProperty, DrugLexiconExactSizeAndUnique) {
  const size_t count = GetParam();
  const auto drugs = MakeDrugLexicon(count);
  EXPECT_EQ(drugs.size(), count);
  const std::set<std::string> unique(drugs.begin(), drugs.end());
  EXPECT_EQ(unique.size(), count);
}

TEST_P(LexiconSizeProperty, AdrLexiconExactSizeAndUnique) {
  const size_t count = GetParam();
  const auto adrs = MakeAdrLexicon(count);
  EXPECT_EQ(adrs.size(), count);
  const std::set<std::string> unique(adrs.begin(), adrs.end());
  EXPECT_EQ(unique.size(), count);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LexiconSizeProperty,
                         ::testing::Values(1, 10, 120, 1366, 2351, 5000));

TEST(LexiconTest, Deterministic) {
  EXPECT_EQ(MakeDrugLexicon(500), MakeDrugLexicon(500));
  EXPECT_EQ(MakeAdrLexicon(500), MakeAdrLexicon(500));
}

TEST(LexiconTest, LargerLexiconExtendsSmaller) {
  const auto small = MakeDrugLexicon(100);
  const auto large = MakeDrugLexicon(200);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], large[i]);
  }
}

TEST(LexiconTest, SeedsAppearFirst) {
  const auto drugs = MakeDrugLexicon(10);
  EXPECT_EQ(drugs[0], "Atorvastatin");  // Table 1 example drug
  const auto adrs = MakeAdrLexicon(10);
  EXPECT_EQ(adrs[0], "Rhabdomyolysis");  // Table 1 example reaction
}

TEST(LexiconTest, NoEmptyEntries) {
  for (const auto& drug : MakeDrugLexicon(2000)) {
    EXPECT_FALSE(drug.empty());
  }
  for (const auto& adr : MakeAdrLexicon(3000)) {
    EXPECT_FALSE(adr.empty());
  }
}

TEST(ClosedVocabularyTest, ExpectedSizes) {
  EXPECT_EQ(AustralianStates().size(), 8u);
  EXPECT_EQ(SexCategories().size(), 2u);
  EXPECT_GE(OutcomeDescriptions().size(), 4u);
  EXPECT_GE(SeverityDescriptions().size(), 3u);
  EXPECT_GE(ReporterTypes().size(), 4u);
  EXPECT_GE(RoutesOfAdministration().size(), 4u);
  EXPECT_GE(DosageForms().size(), 4u);
}

TEST(ClosedVocabularyTest, StableReferences) {
  // Repeated calls must return the same object (function-local static).
  EXPECT_EQ(&AustralianStates(), &AustralianStates());
  EXPECT_EQ(&OutcomeDescriptions(), &OutcomeDescriptions());
}

}  // namespace
}  // namespace adrdedup::datagen
