#include "core/active_learning.h"

#include <set>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "distance/pair_dataset.h"
#include "eval/metrics.h"

namespace adrdedup::core {
namespace {

using distance::LabeledPair;

struct ActiveFixture {
  ActiveFixture() {
    datagen::GeneratorConfig config;
    config.num_reports = 1500;
    config.num_duplicate_pairs = 100;
    config.num_drugs = 250;
    config.num_adrs = 400;
    auto corpus = datagen::GenerateCorpus(config);
    auto features = distance::ExtractAllFeatures(corpus.db);
    distance::DatasetSpec spec;
    spec.num_training_pairs = 12000;  // the unlabelled pool
    spec.num_testing_pairs = 3000;    // held-out evaluation
    auto datasets = distance::BuildDatasets(corpus, features, spec);
    pool = std::move(datasets.train.pairs);
    eval_set = std::move(datasets.test.pairs);
    for (const auto& pair : eval_set) eval_labels.push_back(pair.label);
  }
  std::vector<LabeledPair> pool;
  std::vector<LabeledPair> eval_set;
  std::vector<int8_t> eval_labels;
};

ActiveFixture& Fixture() {
  static ActiveFixture& fixture = *new ActiveFixture();
  return fixture;
}

LabelOracle TruthOracle() {
  return [](const LabeledPair& pair) { return pair.label; };
}

ActiveLearningOptions BaseOptions(QueryStrategy strategy) {
  ActiveLearningOptions options;
  options.strategy = strategy;
  options.initial_labels = 500;
  options.batch_size = 50;
  options.rounds = 6;
  options.knn.num_clusters = 8;
  return options;
}

TEST(ActiveLearningTest, LabelBudgetRespected) {
  const auto options = BaseOptions(QueryStrategy::kUncertainty);
  const auto result =
      RunActiveLearning(Fixture().pool, TruthOracle(), options);
  EXPECT_EQ(result.labelled.size(),
            options.initial_labels + options.batch_size * options.rounds);
  EXPECT_EQ(result.oracle_queries, options.batch_size * options.rounds);
}

TEST(ActiveLearningTest, OracleLabelsMatchGroundTruth) {
  const auto options = BaseOptions(QueryStrategy::kRandom);
  const auto result =
      RunActiveLearning(Fixture().pool, TruthOracle(), options);
  // Every labelled pair's vector exists in the pool with the same label.
  size_t checked = 0;
  for (const auto& labelled : result.labelled) {
    for (const auto& pool_pair : Fixture().pool) {
      if (PairKey(pool_pair.pair) == PairKey(labelled.pair)) {
        EXPECT_EQ(pool_pair.label, labelled.label);
        ++checked;
        break;
      }
    }
  }
  EXPECT_EQ(checked, result.labelled.size());
}

TEST(ActiveLearningTest, NoPairLabelledTwice) {
  const auto options = BaseOptions(QueryStrategy::kUncertainty);
  const auto result =
      RunActiveLearning(Fixture().pool, TruthOracle(), options);
  std::set<uint64_t> keys;
  for (const auto& pair : result.labelled) {
    EXPECT_TRUE(keys.insert(PairKey(pair.pair)).second);
  }
}

TEST(ActiveLearningTest, UncertaintyFindsMorePositivesThanRandom) {
  const auto uncertain = RunActiveLearning(
      Fixture().pool, TruthOracle(),
      BaseOptions(QueryStrategy::kUncertainty));
  const auto random = RunActiveLearning(
      Fixture().pool, TruthOracle(), BaseOptions(QueryStrategy::kRandom));
  // Uncertainty sampling concentrates queries near the decision boundary
  // where the rare positives live.
  EXPECT_GE(uncertain.positives_found, random.positives_found);
}

TEST(ActiveLearningTest, ObserverSeesEveryRound) {
  const auto options = BaseOptions(QueryStrategy::kUncertainty);
  std::vector<size_t> rounds;
  std::vector<size_t> labels;
  RunActiveLearning(Fixture().pool, TruthOracle(), options,
                    [&](size_t round, size_t labels_used,
                        const FastKnnClassifier& classifier) {
                      rounds.push_back(round);
                      labels.push_back(labels_used);
                      EXPECT_GT(classifier.num_partitions(), 0u);
                    });
  ASSERT_EQ(rounds.size(), options.rounds + 1);  // round 0 + each round
  EXPECT_EQ(rounds.front(), 0u);
  EXPECT_EQ(rounds.back(), options.rounds);
  for (size_t i = 1; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], labels[i - 1] + options.batch_size);
  }
}

TEST(ActiveLearningTest, QualityImprovesOverPassiveAtEqualBudget) {
  auto& fixture = Fixture();
  auto final_aupr = [&](QueryStrategy strategy) {
    double aupr = 0.0;
    const auto options = BaseOptions(strategy);
    RunActiveLearning(
        fixture.pool, TruthOracle(), options,
        [&](size_t round, size_t, const FastKnnClassifier& classifier) {
          if (round != options.rounds) return;
          std::vector<double> scores;
          for (const auto& pair : fixture.eval_set) {
            scores.push_back(classifier.Score(pair.vector));
          }
          aupr = eval::Aupr(scores, fixture.eval_labels);
        });
    return aupr;
  };
  const double active = final_aupr(QueryStrategy::kUncertainty);
  const double passive = final_aupr(QueryStrategy::kRandom);
  // At this tiny label budget the passive learner has almost no positive
  // examples; the active learner must do at least as well.
  EXPECT_GE(active + 0.02, passive);
}

TEST(ActiveLearningTest, PoolTooSmallDies) {
  ActiveLearningOptions options = BaseOptions(QueryStrategy::kRandom);
  options.initial_labels = 100;
  options.batch_size = 50;
  options.rounds = 10;
  std::vector<LabeledPair> tiny_pool(200);
  EXPECT_DEATH(
      RunActiveLearning(tiny_pool, TruthOracle(), options),
      "pool too small");
}

}  // namespace
}  // namespace adrdedup::core
