#include "report/report_io.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace adrdedup::report {
namespace {

class ReportIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("adrdedup_report_io_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(ReportIoTest, RoundTripSmallDatabase) {
  ReportDatabase db;
  AdrReport a;
  a.Set(FieldId::kCaseNumber, "C1");
  a.Set(FieldId::kReportDescription, "text with, comma and \"quotes\"");
  a.Set(FieldId::kSex, "M");
  db.Add(a);
  AdrReport b;
  b.Set(FieldId::kCaseNumber, "C2");
  b.Set(FieldId::kReportDescription, "multi\nline narrative");
  db.Add(b);

  ASSERT_TRUE(WriteCsv(db, path_).ok());
  auto read = ReadCsv(path_);
  ASSERT_TRUE(read.ok());
  const ReportDatabase& loaded = read.value();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.Get(0), a);
  EXPECT_EQ(loaded.Get(1), b);
}

TEST_F(ReportIoTest, RoundTripGeneratedCorpus) {
  datagen::GeneratorConfig config;
  config.num_reports = 300;
  config.num_duplicate_pairs = 20;
  config.num_drugs = 50;
  config.num_adrs = 80;
  auto corpus = datagen::GenerateCorpus(config);
  ASSERT_TRUE(WriteCsv(corpus.db, path_).ok());
  auto read = ReadCsv(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), corpus.db.size());
  for (size_t i = 0; i < corpus.db.size(); ++i) {
    ASSERT_EQ(read.value().Get(static_cast<ReportId>(i)),
              corpus.db.Get(static_cast<ReportId>(i)))
        << "report " << i;
  }
}

TEST_F(ReportIoTest, UnknownColumnRejected) {
  std::ofstream out(path_);
  out << "case_number,bogus_column\nC1,x\n";
  out.close();
  auto read = ReadCsv(path_);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ReportIoTest, RaggedRowRejected) {
  std::ofstream out(path_);
  out << "case_number,sex\nC1,M\nC2\n";
  out.close();
  EXPECT_FALSE(ReadCsv(path_).ok());
}

TEST_F(ReportIoTest, SubsetOfColumnsAccepted) {
  std::ofstream out(path_);
  out << "case_number,sex\nC1,M\n";
  out.close();
  auto read = ReadCsv(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 1u);
  EXPECT_EQ(read.value().Get(0).sex(), "M");
  EXPECT_TRUE(read.value().Get(0).Get(FieldId::kReportDescription).empty());
}

TEST_F(ReportIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace adrdedup::report
