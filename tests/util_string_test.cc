#include "util/string_util.h"

#include <gtest/gtest.h>

namespace adrdedup::util {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, AdjacentSeparatorsYieldEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoSeparator) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(JoinTest, SplitJoinRoundTrip) {
  const std::string text = "x,y,,z";
  EXPECT_EQ(Join(Split(text, ','), ","), text);
}

TEST(ToLowerAsciiTest, LowersOnlyAscii) {
  EXPECT_EQ(ToLowerAscii("AbC123"), "abc123");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(TrimAsciiTest, TrimsBothEnds) {
  EXPECT_EQ(TrimAscii("  hello  "), "hello");
  EXPECT_EQ(TrimAscii("\t\nx\r "), "x");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii(""), "");
  EXPECT_EQ(TrimAscii("no-trim"), "no-trim");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("report_description", "report"));
  EXPECT_FALSE(StartsWith("rep", "report"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(EndsWithTest, Basics) {
  EXPECT_TRUE(EndsWith("report.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
  EXPECT_TRUE(EndsWith("anything", ""));
}

}  // namespace
}  // namespace adrdedup::util
