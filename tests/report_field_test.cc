#include "report/field.h"

#include <set>

#include <gtest/gtest.h>

namespace adrdedup::report {
namespace {

TEST(SchemaTest, Exactly37Fields) {
  EXPECT_EQ(Schema().size(), 37u);
  EXPECT_EQ(kNumFields, 37u);
}

TEST(SchemaTest, FieldIdsMatchPositions) {
  const auto& schema = Schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(schema[i].id), i);
  }
}

TEST(SchemaTest, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const FieldSpec& spec : Schema()) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate field name: " << spec.name;
  }
}

TEST(SchemaTest, FiveTableGroupsPresent) {
  std::set<std::string_view> groups;
  for (const FieldSpec& spec : Schema()) groups.insert(spec.group);
  EXPECT_EQ(groups.size(), 5u);
  EXPECT_TRUE(groups.contains("Case Details"));
  EXPECT_TRUE(groups.contains("Patient Details"));
  EXPECT_TRUE(groups.contains("Reaction Information"));
  EXPECT_TRUE(groups.contains("Medicine Information"));
  EXPECT_TRUE(groups.contains("Reporter Details"));
}

TEST(SchemaTest, ExactlySevenDedupFields) {
  size_t count = 0;
  for (const FieldSpec& spec : Schema()) {
    if (spec.used_in_dedup) ++count;
  }
  EXPECT_EQ(count, 7u);
  EXPECT_EQ(DedupFields().size(), 7u);
}

TEST(SchemaTest, DedupFieldsMatchSection42) {
  // Section 4.2: age numeric; sex/state/onset categorical-ish; drug name,
  // ADR name and report description string/free-text.
  const auto& fields = DedupFields();
  EXPECT_EQ(fields[0], FieldId::kCalculatedAge);
  EXPECT_EQ(fields[1], FieldId::kSex);
  EXPECT_EQ(fields[2], FieldId::kResidentialState);
  EXPECT_EQ(fields[3], FieldId::kOnsetDate);
  EXPECT_EQ(fields[4], FieldId::kGenericNameDescription);
  EXPECT_EQ(fields[5], FieldId::kMeddraPtCode);
  EXPECT_EQ(fields[6], FieldId::kReportDescription);

  EXPECT_EQ(GetFieldSpec(fields[0]).type, FieldType::kNumeric);
  EXPECT_EQ(GetFieldSpec(fields[1]).type, FieldType::kCategorical);
  EXPECT_EQ(GetFieldSpec(fields[4]).type, FieldType::kString);
  EXPECT_EQ(GetFieldSpec(fields[6]).type, FieldType::kFreeText);
  for (FieldId id : fields) {
    EXPECT_TRUE(GetFieldSpec(id).used_in_dedup);
  }
}

TEST(FieldIdFromNameTest, RoundTripsEveryField) {
  for (const FieldSpec& spec : Schema()) {
    auto id = FieldIdFromName(spec.name);
    ASSERT_TRUE(id.has_value()) << spec.name;
    EXPECT_EQ(*id, spec.id);
  }
}

TEST(FieldIdFromNameTest, UnknownNameIsNullopt) {
  EXPECT_FALSE(FieldIdFromName("not_a_field").has_value());
  EXPECT_FALSE(FieldIdFromName("").has_value());
}

}  // namespace
}  // namespace adrdedup::report
