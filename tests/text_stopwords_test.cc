#include "text/stopwords.h"

#include <gtest/gtest.h>

namespace adrdedup::text {
namespace {

TEST(StopWordsTest, CommonWordsAreStopWords) {
  for (const char* word :
       {"the", "a", "and", "of", "with", "was", "is", "on", "to"}) {
    EXPECT_TRUE(IsStopWord(word)) << word;
  }
}

TEST(StopWordsTest, ContentWordsAreNot) {
  for (const char* word : {"rhabdomyolysis", "atorvastatin", "headache",
                           "vaccine", "patient", "hospital"}) {
    EXPECT_FALSE(IsStopWord(word)) << word;
  }
}

TEST(StopWordsTest, CaseSensitiveLowercaseOnly) {
  // The filter runs after lower-casing tokenization, so only lower-case
  // membership is defined; upper-case strings are not in the list.
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_FALSE(IsStopWord("The"));
}

TEST(RemoveStopWordsTest, FiltersInOrder) {
  EXPECT_EQ(RemoveStopWords({"the", "subject", "was", "recovering"}),
            (std::vector<std::string>{"subject", "recovering"}));
}

TEST(RemoveStopWordsTest, AllStopWordsYieldEmpty) {
  EXPECT_TRUE(RemoveStopWords({"the", "of", "and"}).empty());
}

TEST(RemoveStopWordsTest, EmptyInput) {
  EXPECT_TRUE(RemoveStopWords({}).empty());
}

TEST(StopWordsTest, ListIsSortedForBinarySearch) {
  // Membership of every entry must hold — fails if the table loses its
  // sorted order (binary_search precondition).
  EXPECT_GT(StopWordCount(), 100u);
  EXPECT_TRUE(IsStopWord("yourselves"));
  EXPECT_TRUE(IsStopWord("a"));
  EXPECT_TRUE(IsStopWord("ought"));
}

}  // namespace
}  // namespace adrdedup::text
