#include "core/duplicate_groups.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace adrdedup::core {
namespace {

using distance::ReportPair;

TEST(UnionFindTest, InitiallyDisjoint) {
  UnionFind uf(5);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SizeOf(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndReportsNovelty) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_EQ(uf.SizeOf(0), 2u);
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_EQ(uf.SizeOf(2), 3u);
  EXPECT_NE(uf.Find(0), uf.Find(4));
}

TEST(UnionFindTest, TransitiveChains) {
  UnionFind uf(100);
  for (uint32_t i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.Find(0), uf.Find(99));
  EXPECT_EQ(uf.SizeOf(50), 100u);
}

TEST(UnionFindTest, RandomizedPartitionInvariant) {
  util::Rng rng(3);
  UnionFind uf(200);
  // Reference: naive label propagation.
  std::vector<int> label(200);
  for (int i = 0; i < 200; ++i) label[i] = i;
  auto relabel = [&](int from, int to) {
    for (int& l : label) {
      if (l == from) l = to;
    }
  };
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<uint32_t>(rng.Uniform(200));
    const auto b = static_cast<uint32_t>(rng.Uniform(200));
    uf.Union(a, b);
    relabel(label[a], label[b]);
  }
  for (uint32_t i = 0; i < 200; ++i) {
    for (uint32_t j = 0; j < 200; ++j) {
      EXPECT_EQ(uf.Find(i) == uf.Find(j), label[i] == label[j])
          << i << "," << j;
    }
  }
}

TEST(DuplicateGroupsTest, PairsFormGroups) {
  const std::vector<ReportPair> pairs = {{0, 1}, {3, 4}, {4, 5}};
  const auto groups = BuildDuplicateGroups(pairs, 8);
  ASSERT_EQ(groups.groups.size(), 2u);
  EXPECT_EQ(groups.groups[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(groups.groups[1], (std::vector<uint32_t>{3, 4, 5}));
  EXPECT_EQ(groups.num_singletons, 3u);  // 2, 6, 7
  EXPECT_EQ(groups.DistinctCases(), 5u);
}

TEST(DuplicateGroupsTest, TransitiveClosureMergesChains) {
  const std::vector<ReportPair> pairs = {{0, 1}, {1, 2}, {2, 3}, {5, 6},
                                         {6, 7}, {0, 3}};
  const auto groups = BuildDuplicateGroups(pairs, 10);
  ASSERT_EQ(groups.groups.size(), 2u);
  EXPECT_EQ(groups.groups[0], (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(groups.groups[1], (std::vector<uint32_t>{5, 6, 7}));
}

TEST(DuplicateGroupsTest, NoPairsAllSingletons) {
  const auto groups = BuildDuplicateGroups({}, 42);
  EXPECT_TRUE(groups.groups.empty());
  EXPECT_EQ(groups.num_singletons, 42u);
  EXPECT_EQ(groups.DistinctCases(), 42u);
}

TEST(DuplicateGroupsTest, DuplicatePairsIdempotent) {
  const std::vector<ReportPair> pairs = {{0, 1}, {0, 1}, {1, 0}};
  const auto groups = BuildDuplicateGroups(pairs, 3);
  ASSERT_EQ(groups.groups.size(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<uint32_t>{0, 1}));
}

TEST(DuplicateGroupsTest, GroupsSortedBySmallestMember) {
  const std::vector<ReportPair> pairs = {{7, 8}, {0, 2}};
  const auto groups = BuildDuplicateGroups(pairs, 10);
  ASSERT_EQ(groups.groups.size(), 2u);
  EXPECT_EQ(groups.groups[0][0], 0u);
  EXPECT_EQ(groups.groups[1][0], 7u);
}

TEST(DuplicateGroupsTest, OutOfRangePairDies) {
  EXPECT_DEATH(
      { auto g = BuildDuplicateGroups({{0, 9}}, 5); (void)g; },
      "Check failed");
}

}  // namespace
}  // namespace adrdedup::core
