#include "text/porter_stemmer.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace adrdedup::text {
namespace {

// Reference pairs from Porter's 1980 paper and the canonical test
// vocabulary.
class PorterKnownStems
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {
};

TEST_P(PorterKnownStems, MatchesReference) {
  const auto& [word, stem] = GetParam();
  EXPECT_EQ(PorterStem(word), stem) << "input: " << word;
}

INSTANTIATE_TEST_SUITE_P(
    Reference, PorterKnownStems,
    ::testing::Values(
        // Step 1a
        std::pair{"caresses", "caress"}, std::pair{"ponies", "poni"},
        std::pair{"ties", "ti"}, std::pair{"caress", "caress"},
        std::pair{"cats", "cat"},
        // Step 1b
        std::pair{"feed", "feed"}, std::pair{"agreed", "agre"},
        std::pair{"plastered", "plaster"}, std::pair{"bled", "bled"},
        std::pair{"motoring", "motor"}, std::pair{"sing", "sing"},
        std::pair{"conflated", "conflat"}, std::pair{"troubled", "troubl"},
        std::pair{"sized", "size"}, std::pair{"hopping", "hop"},
        std::pair{"tanned", "tan"}, std::pair{"falling", "fall"},
        std::pair{"hissing", "hiss"}, std::pair{"fizzed", "fizz"},
        std::pair{"failing", "fail"}, std::pair{"filing", "file"},
        // Step 1c
        std::pair{"happy", "happi"}, std::pair{"sky", "sky"},
        // Step 2
        std::pair{"relational", "relat"}, std::pair{"conditional", "condit"},
        std::pair{"rational", "ration"}, std::pair{"valenci", "valenc"},
        std::pair{"hesitanci", "hesit"}, std::pair{"digitizer", "digit"},
        std::pair{"conformabli", "conform"}, std::pair{"radicalli", "radic"},
        std::pair{"differentli", "differ"}, std::pair{"vileli", "vile"},
        std::pair{"analogousli", "analog"},
        std::pair{"vietnamization", "vietnam"},
        std::pair{"predication", "predic"}, std::pair{"operator", "oper"},
        std::pair{"feudalism", "feudal"},
        std::pair{"decisiveness", "decis"}, std::pair{"hopefulness", "hope"},
        std::pair{"callousness", "callous"}, std::pair{"formaliti", "formal"},
        std::pair{"sensitiviti", "sensit"}, std::pair{"sensibiliti", "sensibl"},
        // Step 3
        std::pair{"triplicate", "triplic"}, std::pair{"formative", "form"},
        std::pair{"formalize", "formal"}, std::pair{"electriciti", "electr"},
        std::pair{"electrical", "electr"}, std::pair{"hopeful", "hope"},
        std::pair{"goodness", "good"},
        // Step 4
        std::pair{"revival", "reviv"}, std::pair{"allowance", "allow"},
        std::pair{"inference", "infer"}, std::pair{"airliner", "airlin"},
        std::pair{"gyroscopic", "gyroscop"},
        std::pair{"adjustable", "adjust"}, std::pair{"defensible", "defens"},
        std::pair{"irritant", "irrit"}, std::pair{"replacement", "replac"},
        std::pair{"adjustment", "adjust"}, std::pair{"dependent", "depend"},
        std::pair{"adoption", "adopt"}, std::pair{"homologou", "homolog"},
        std::pair{"communism", "commun"}, std::pair{"activate", "activ"},
        std::pair{"angulariti", "angular"}, std::pair{"homologous", "homolog"},
        std::pair{"effective", "effect"}, std::pair{"bowdlerize", "bowdler"},
        // Step 5
        std::pair{"probate", "probat"}, std::pair{"rate", "rate"},
        std::pair{"cease", "ceas"}, std::pair{"controll", "control"},
        std::pair{"roll", "roll"}));

// Medical vocabulary from the ADR domain.
TEST(PorterStemTest, MedicalVocabulary) {
  EXPECT_EQ(PorterStem("experienced"), PorterStem("experiencing"));
  EXPECT_EQ(PorterStem("vaccination"), PorterStem("vaccinated"));
  EXPECT_EQ(PorterStem("reported"), PorterStem("reporting"));
  EXPECT_EQ(PorterStem("hospitalisation"), "hospitalis");
}

TEST(PorterStemTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("on"), "on");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemTest, NonAlphaTokensUnchanged) {
  EXPECT_EQ(PorterStem("2013"), "2013");
  EXPECT_EQ(PorterStem("b12"), "b12");
}

TEST(PorterStemTest, StemmingIsIdempotentOnCommonVocabulary) {
  // Porter is not idempotent in general (e.g. "decisiveness" -> "decis"
  // -> "deci"), but on most ordinary vocabulary a second pass is a no-op.
  const std::vector<std::string> words = {
      "caresses",  "motoring",  "relational", "vietnamization",
      "formative", "replacement", "experiencing",
      "vaccination", "headaches", "subjects"};
  for (const auto& word : words) {
    const std::string once = PorterStem(word);
    EXPECT_EQ(PorterStem(once), once) << word;
  }
}

TEST(PorterStemTest, DocumentedNonIdempotenceCase) {
  // The classic counter-example: the first pass strips -iveness and -ness
  // machinery to "decis"; a second pass sees a plural-looking final 's'.
  EXPECT_EQ(PorterStem("decisiveness"), "decis");
  EXPECT_EQ(PorterStem("decis"), "deci");
}

TEST(PorterStemAllTest, StemsEveryToken) {
  EXPECT_EQ(PorterStemAll({"caresses", "motoring"}),
            (std::vector<std::string>{"caress", "motor"}));
}

TEST(PorterStemTest, RandomWordsDoNotCrashAndShrink) {
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string word;
    const size_t length = 1 + rng.Uniform(15);
    for (size_t c = 0; c < length; ++c) {
      word.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    const std::string stem = PorterStem(word);
    EXPECT_LE(stem.size(), word.size() + 1) << word;  // at most +1 ("bl"->"ble")
    EXPECT_FALSE(stem.empty());
  }
}

}  // namespace
}  // namespace adrdedup::text
