#include "text/text_pipeline.h"

#include <gtest/gtest.h>

namespace adrdedup::text {
namespace {

TEST(ProcessFreeTextTest, FullPipeline) {
  const auto tokens =
      ProcessFreeText("The subject experienced headaches and vomiting.");
  // "the" and "and" are stop words; remaining words are stemmed.
  EXPECT_EQ(tokens, (std::vector<std::string>{"subject", "experienc",
                                              "headach", "vomit"}));
}

TEST(ProcessFreeTextTest, StemmingOff) {
  TextPipelineOptions options;
  options.stem = false;
  const auto tokens = ProcessFreeText("experienced headaches", options);
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"experienced", "headaches"}));
}

TEST(ProcessFreeTextTest, StopwordsOff) {
  TextPipelineOptions options;
  options.remove_stopwords = false;
  options.stem = false;
  const auto tokens = ProcessFreeText("the subject", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"the", "subject"}));
}

TEST(ProcessFreeTextTest, NumberFiltering) {
  TextPipelineOptions options;
  options.min_number_length = 4;
  const auto tokens = ProcessFreeText("dose 80 mg in 2013", options);
  EXPECT_EQ(tokens, (std::vector<std::string>{"dose", "mg", "2013"}));
}

TEST(FreeTextJaccardDistanceTest, ParaphraseCloserThanUnrelated) {
  const char* original =
      "The 46 year old male patient experienced rhabdomyolysis while on "
      "atorvastatin for the treatment of unknown indication.";
  const char* paraphrase =
      "A 46-year-old male subject on atorvastatin was experiencing "
      "rhabdomyolysis; the indication for treatment is unknown.";
  const char* unrelated =
      "In the afternoon the patient reported uncontrollable cough and "
      "headache following vaccination with Boostrix.";
  const double d_para = FreeTextJaccardDistance(original, paraphrase);
  const double d_unrel = FreeTextJaccardDistance(original, unrelated);
  EXPECT_LT(d_para, 0.5);
  EXPECT_GT(d_unrel, 0.7);
  EXPECT_LT(d_para, d_unrel);
}

TEST(FreeTextJaccardDistanceTest, IdentityAndRange) {
  EXPECT_DOUBLE_EQ(FreeTextJaccardDistance("same words here",
                                           "same words here"),
                   0.0);
  const double d = FreeTextJaccardDistance("alpha beta", "gamma delta");
  EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(FreeTextJaccardDistanceTest, StemmingBridgesInflection) {
  TextPipelineOptions with_stem;
  TextPipelineOptions without_stem;
  without_stem.stem = false;
  const char* a = "patient experienced headaches";
  const char* b = "patients experiencing headache";
  EXPECT_LT(FreeTextJaccardDistance(a, b, with_stem),
            FreeTextJaccardDistance(a, b, without_stem));
  EXPECT_DOUBLE_EQ(FreeTextJaccardDistance(a, b, with_stem), 0.0);
}

}  // namespace
}  // namespace adrdedup::text
