// Block-manager storage subsystem: LRU budget eviction, disk spill and
// read-back, DISK_ONLY blocks, the Persist()/Checkpoint() RDD surface,
// chaos drops through the block store, and checkpoint-based recovery
// that provably skips upstream recomputation.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "minispark/byte_size.h"
#include "minispark/fault_injector.h"
#include "minispark/rdd.h"
#include "minispark/storage/block_manager.h"
#include "minispark/storage/serializer.h"
#include "util/fault_fs.h"

namespace adrdedup::minispark {
namespace {

namespace fs = std::filesystem;
using storage::BlockId;
using storage::BlockManager;
using storage::StorageLevel;

BlockManager::BlockData IntBlock(std::vector<int> values) {
  return std::make_shared<const std::vector<int>>(std::move(values));
}

std::string IntSerialize(const BlockManager::BlockData& data) {
  return storage::SerializeToString(
      *std::static_pointer_cast<const std::vector<int>>(data));
}

BlockManager::BlockData IntDeserialize(std::string_view payload) {
  auto value = std::make_shared<std::vector<int>>();
  if (!storage::DeserializeFromString(payload, value.get())) return nullptr;
  return std::shared_ptr<const std::vector<int>>(std::move(value));
}

const std::vector<int>& AsInts(const BlockManager::BlockData& data) {
  return *std::static_pointer_cast<const std::vector<int>>(data);
}

// A scratch directory per test, removed on teardown.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adrdedup-storage-test-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Dir(const char* sub) const { return (dir_ / sub).string(); }

  // Flips one payload byte in every block file under `dir`.
  static size_t CorruptAllBlockFiles(const std::string& dir) {
    size_t corrupted = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      std::string bytes;
      {
        std::ifstream in(entry.path(), std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
      }
      if (bytes.empty()) continue;
      bytes.back() ^= 0x01;
      std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
      out << bytes;
      ++corrupted;
    }
    return corrupted;
  }

  fs::path dir_;
};

TEST_F(StorageTest, PutGetMemoryHit) {
  Metrics metrics;
  BlockManager manager({.memory_budget_bytes = 0}, &metrics);
  manager.Put({1, 0}, IntBlock({1, 2, 3}), 100, StorageLevel::kMemoryOnly,
              IntSerialize, IntDeserialize);
  EXPECT_TRUE(manager.InMemory({1, 0}));
  EXPECT_EQ(manager.memory_used(), 100u);
  auto hit = manager.Get({1, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(AsInts(hit), (std::vector<int>{1, 2, 3}));
  const auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.cache_hits, 1u);
  EXPECT_EQ(snapshot.blocks_stored, 1u);
  EXPECT_EQ(snapshot.bytes_stored, 100u);
}

TEST_F(StorageTest, UnknownBlockIsAMiss) {
  Metrics metrics;
  BlockManager manager({}, &metrics);
  EXPECT_EQ(manager.Get({9, 9}), nullptr);
  EXPECT_EQ(metrics.Snapshot().cache_misses, 1u);
}

TEST_F(StorageTest, MemoryOnlyEvictionDropsLeastRecentlyUsed) {
  Metrics metrics;
  BlockManager manager({.memory_budget_bytes = 250}, &metrics);
  manager.Put({1, 0}, IntBlock({0}), 100, StorageLevel::kMemoryOnly,
              IntSerialize, IntDeserialize);
  manager.Put({1, 1}, IntBlock({1}), 100, StorageLevel::kMemoryOnly,
              IntSerialize, IntDeserialize);
  // Touch block 0 so block 1 is the LRU victim.
  ASSERT_NE(manager.Get({1, 0}), nullptr);
  manager.Put({1, 2}, IntBlock({2}), 100, StorageLevel::kMemoryOnly,
              IntSerialize, IntDeserialize);
  EXPECT_TRUE(manager.InMemory({1, 0}));
  EXPECT_FALSE(manager.InMemory({1, 1}));
  EXPECT_TRUE(manager.InMemory({1, 2}));
  EXPECT_LE(manager.memory_used(), 250u);
  // A MEMORY_ONLY victim is gone for good: miss, lineage recomputes.
  EXPECT_EQ(manager.Get({1, 1}), nullptr);
  const auto snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.blocks_evicted, 1u);
  EXPECT_EQ(snapshot.blocks_spilled, 0u);
}

TEST_F(StorageTest, MemoryAndDiskEvictionSpillsAndReadsBack) {
  Metrics metrics;
  BlockManager manager(
      {.memory_budget_bytes = 150, .spill_dir = Dir("spill")}, &metrics);
  manager.Put({1, 0}, IntBlock({10, 20}), 100, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  manager.Put({1, 1}, IntBlock({30, 40}), 100, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  EXPECT_FALSE(manager.InMemory({1, 0}));  // evicted to fit block 1
  EXPECT_TRUE(manager.OnDisk({1, 0}));
  const auto before = metrics.Snapshot();
  EXPECT_EQ(before.blocks_evicted, 1u);
  EXPECT_EQ(before.blocks_spilled, 1u);
  EXPECT_GT(before.bytes_spilled, 0u);
  auto hit = manager.Get({1, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(AsInts(hit), (std::vector<int>{10, 20}));
  // The disk hit was re-admitted to memory, which in turn evicted and
  // spilled block 1 under the same budget.
  EXPECT_TRUE(manager.InMemory({1, 0}));
  const auto after = metrics.Snapshot();
  EXPECT_EQ(after.spill_blocks_read, 1u);
  EXPECT_EQ(after.blocks_evicted, 2u);
  EXPECT_EQ(after.blocks_spilled, 2u);
}

TEST_F(StorageTest, DiskOnlyNeverOccupiesBudget) {
  Metrics metrics;
  BlockManager manager(
      {.memory_budget_bytes = 1000, .spill_dir = Dir("spill")}, &metrics);
  manager.Put({2, 0}, IntBlock({7, 8, 9}), 500, StorageLevel::kDiskOnly,
              IntSerialize, IntDeserialize);
  EXPECT_FALSE(manager.InMemory({2, 0}));
  EXPECT_TRUE(manager.OnDisk({2, 0}));
  EXPECT_EQ(manager.memory_used(), 0u);
  auto hit = manager.Get({2, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(AsInts(hit), (std::vector<int>{7, 8, 9}));
  // Still not promoted to memory: DISK_ONLY stays on disk.
  EXPECT_FALSE(manager.InMemory({2, 0}));
}

TEST_F(StorageTest, BlockLargerThanWholeBudgetSpillsDirectly) {
  Metrics metrics;
  BlockManager manager(
      {.memory_budget_bytes = 50, .spill_dir = Dir("spill")}, &metrics);
  manager.Put({3, 0}, IntBlock({1}), 500, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  EXPECT_FALSE(manager.InMemory({3, 0}));
  EXPECT_TRUE(manager.OnDisk({3, 0}));
  EXPECT_EQ(manager.memory_used(), 0u);
  ASSERT_NE(manager.Get({3, 0}), nullptr);
}

TEST_F(StorageTest, DropForgetsMemoryAndSpillFile) {
  Metrics metrics;
  BlockManager manager({.spill_dir = Dir("spill")}, &metrics);
  manager.Put({4, 0}, IntBlock({1, 2}), 100, StorageLevel::kDiskOnly,
              IntSerialize, IntDeserialize);
  EXPECT_TRUE(manager.OnDisk({4, 0}));
  manager.Drop({4, 0});
  EXPECT_FALSE(manager.OnDisk({4, 0}));
  EXPECT_EQ(manager.Get({4, 0}), nullptr);
  EXPECT_TRUE(fs::is_empty(Dir("spill")));
}

TEST_F(StorageTest, CorruptSpillFileFallsBackToMiss) {
  Metrics metrics;
  BlockManager manager(
      {.memory_budget_bytes = 100, .spill_dir = Dir("spill")}, &metrics);
  manager.Put({5, 0}, IntBlock({1, 2, 3}), 80, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  manager.Put({5, 1}, IntBlock({4, 5, 6}), 80, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);  // evicts + spills block 0
  ASSERT_TRUE(manager.OnDisk({5, 0}));
  ASSERT_GT(CorruptAllBlockFiles(Dir("spill")), 0u);
  // The lost block surfaces as a miss, not an error: lineage recomputes.
  EXPECT_EQ(manager.Get({5, 0}), nullptr);
  EXPECT_GE(metrics.Snapshot().cache_misses, 1u);
}

TEST_F(StorageTest, PutReplacementInvalidatesStaleSpillFile) {
  Metrics metrics;
  BlockManager manager(
      {.memory_budget_bytes = 100, .spill_dir = Dir("spill")}, &metrics);
  manager.Put({7, 0}, IntBlock({1, 2, 3}), 80, StorageLevel::kDiskOnly,
              IntSerialize, IntDeserialize);
  ASSERT_TRUE(manager.OnDisk({7, 0}));
  // Replace the block with new data at a memory-resident level: the old
  // spill file must not survive as the block's disk copy.
  manager.Put({7, 0}, IntBlock({4, 5, 6}), 80, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  EXPECT_FALSE(manager.OnDisk({7, 0}));
  // Evict the replacement; the re-spill must write the *new* payload.
  manager.Put({7, 1}, IntBlock({0}), 80, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  ASSERT_FALSE(manager.InMemory({7, 0}));
  auto hit = manager.Get({7, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(AsInts(hit), (std::vector<int>{4, 5, 6}));
}

TEST_F(StorageTest, DiskOnlyWithoutSerializerKeepsDataInMemory) {
  Metrics metrics;
  BlockManager manager({.spill_dir = Dir("spill")}, &metrics);
  // No serializer: DISK_ONLY cannot spill and must degrade to
  // memory-only behaviour instead of silently discarding the data.
  manager.Put({8, 0}, IntBlock({6, 7}), 50, StorageLevel::kDiskOnly,
              nullptr, nullptr);
  EXPECT_FALSE(manager.OnDisk({8, 0}));
  EXPECT_TRUE(manager.InMemory({8, 0}));
  auto hit = manager.Get({8, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(AsInts(hit), (std::vector<int>{6, 7}));
}

TEST_F(StorageTest, NullSerializerDegradesToMemoryOnly) {
  Metrics metrics;
  BlockManager manager(
      {.memory_budget_bytes = 100, .spill_dir = Dir("spill")}, &metrics);
  manager.Put({6, 0}, IntBlock({1}), 80, StorageLevel::kMemoryAndDisk,
              nullptr, nullptr);
  manager.Put({6, 1}, IntBlock({2}), 80, StorageLevel::kMemoryAndDisk,
              nullptr, nullptr);
  // The evicted block could not spill (no serializer): it is simply lost.
  EXPECT_FALSE(manager.OnDisk({6, 0}));
  EXPECT_EQ(manager.Get({6, 0}), nullptr);
}

TEST_F(StorageTest, EnsureWritableDirRejectsUnusablePath) {
  EXPECT_FALSE(BlockManager::EnsureWritableDir("/dev/null/sub").ok());
  EXPECT_TRUE(BlockManager::EnsureWritableDir(Dir("fresh/nested")).ok());
}

TEST_F(StorageTest, SpillWriteFaultDegradesToMemoryResidency) {
  Metrics metrics;
  BlockManager manager({.spill_dir = Dir("spill")}, &metrics);
  // Every spill-class write fails with ENOSPC: a DISK_ONLY put must
  // degrade to memory-only residency and stay servable, never vanish.
  util::FaultScript script;
  script.seed = 31;
  script.enospc_rate = 1.0;
  script.class_mask = util::FileClassBit(util::FileClass::kSpill);
  util::FaultFs::Instance().SetScript(script);
  manager.Put({9, 0}, IntBlock({4, 5, 6}), 80, StorageLevel::kDiskOnly,
              IntSerialize, IntDeserialize);
  util::FaultFs::Instance().ClearScript();
  EXPECT_FALSE(manager.OnDisk({9, 0}));
  EXPECT_TRUE(manager.InMemory({9, 0}));
  auto hit = manager.Get({9, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(AsInts(hit), (std::vector<int>{4, 5, 6}));
  EXPECT_GE(metrics.Snapshot().spill_write_failures, 1u);
  // With the disk healthy again, spills resume and the counter holds.
  const uint64_t failures = metrics.Snapshot().spill_write_failures;
  manager.Put({9, 1}, IntBlock({7}), 80, StorageLevel::kDiskOnly,
              IntSerialize, IntDeserialize);
  EXPECT_TRUE(manager.OnDisk({9, 1}));
  EXPECT_EQ(metrics.Snapshot().spill_write_failures, failures);
}

TEST_F(StorageTest, EvictionSpillFaultCountsTheFailure) {
  Metrics metrics;
  BlockManager manager(
      {.memory_budget_bytes = 100, .spill_dir = Dir("spill")}, &metrics);
  manager.Put({10, 0}, IntBlock({1, 2}), 80, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  util::FaultScript script;
  script.seed = 37;
  script.eio_rate = 1.0;
  script.class_mask = util::FileClassBit(util::FileClass::kSpill);
  util::FaultFs::Instance().SetScript(script);
  // Evicting block 0 tries to spill it; the injected EIO means the
  // eviction loses the block (lineage recomputes) but must be counted.
  manager.Put({10, 1}, IntBlock({3, 4}), 80, StorageLevel::kMemoryAndDisk,
              IntSerialize, IntDeserialize);
  util::FaultFs::Instance().ClearScript();
  EXPECT_FALSE(manager.OnDisk({10, 0}));
  EXPECT_EQ(manager.Get({10, 0}), nullptr);
  EXPECT_GE(metrics.Snapshot().spill_write_failures, 1u);
}

// ---- Rdd::Persist / Checkpoint integration ----

TEST_F(StorageTest, PersistMemoryAndDiskIsBitIdenticalUnderTightBudget) {
  std::vector<int> data(4096);
  std::iota(data.begin(), data.end(), 0);

  // Unbounded reference run.
  std::vector<int> reference;
  {
    SparkContext ctx({.num_executors = 4});
    reference = ctx.Parallelize(data, 16)
                    .Map<int>([](int x) { return x * 31 + 7; })
                    .Persist(StorageLevel::kMemoryAndDisk)
                    .Collect();
  }

  // Budget sized to hold only a fraction of the 16 blocks at once.
  SparkContext ctx({.num_executors = 4,
                    .memory_budget_bytes = 4096,
                    .spill_dir = Dir("spill")});
  auto persisted = ctx.Parallelize(data, 16)
                       .Map<int>([](int x) { return x * 31 + 7; })
                       .Persist(StorageLevel::kMemoryAndDisk);
  const auto first = persisted.Collect();
  const auto second = persisted.Collect();
  EXPECT_EQ(first, reference);
  EXPECT_EQ(second, reference);
  const auto snapshot = ctx.metrics().Snapshot();
  EXPECT_GT(snapshot.blocks_evicted, 0u);
  EXPECT_GT(snapshot.bytes_spilled, 0u);
  EXPECT_GT(snapshot.spill_blocks_read, 0u);
}

TEST_F(StorageTest, PersistDiskOnlyReusesSerializedBlocks) {
  std::atomic<int> compute_calls{0};
  SparkContext ctx({.num_executors = 2, .spill_dir = Dir("spill")});
  auto persisted = ctx.Parallelize(std::vector<int>(64, 1), 4)
                       .Map<int>([&compute_calls](int x) {
                         ++compute_calls;
                         return x + 1;
                       })
                       .Persist(StorageLevel::kDiskOnly);
  EXPECT_EQ(persisted.Count(), 64u);
  const int after_first = compute_calls.load();
  EXPECT_EQ(after_first, 64);
  // The second action is served from spill files, not recomputation.
  const auto values = persisted.Collect();
  EXPECT_EQ(compute_calls.load(), after_first);
  EXPECT_EQ(values, std::vector<int>(64, 2));
  EXPECT_GT(ctx.metrics().Snapshot().spill_blocks_read, 0u);
}

TEST_F(StorageTest, ChaosDropOnSpilledPersistRecomputesIdentically) {
  SparkContext ctx({.num_executors = 2, .spill_dir = Dir("spill")});
  auto persisted = ctx.Parallelize(std::vector<int>{1, 2, 3, 4, 5, 6}, 3)
                       .Map<int>([](int x) { return x * x; })
                       .Persist(StorageLevel::kDiskOnly);
  const auto before = persisted.Collect();
  persisted.DropCachedPartition(1);  // removes the spill file too
  const auto after = persisted.Collect();
  EXPECT_EQ(before, after);
  EXPECT_EQ(ctx.metrics().Snapshot().partitions_recomputed, 1u);
}

TEST_F(StorageTest, CorruptSpillRecoversThroughLineage) {
  SparkContext ctx({.num_executors = 2, .spill_dir = Dir("spill")});
  auto persisted = ctx.Parallelize(std::vector<int>{3, 1, 4, 1, 5, 9}, 3)
                       .Map<int>([](int x) { return x - 1; })
                       .Persist(StorageLevel::kDiskOnly);
  const auto before = persisted.Collect();
  ASSERT_GT(CorruptAllBlockFiles(Dir("spill")), 0u);
  const auto after = persisted.Collect();
  EXPECT_EQ(before, after);
  EXPECT_GT(ctx.metrics().Snapshot().partitions_recomputed, 0u);
}

TEST_F(StorageTest, CheckpointTruncatesLineage) {
  SparkContext ctx({.num_executors = 2, .checkpoint_dir = Dir("ckpt")});
  auto mapped = ctx.Parallelize(std::vector<int>{1, 2, 3, 4}, 2)
                    .Map<int>([](int x) { return x + 10; });
  auto checkpointed = mapped.Checkpoint();
  EXPECT_NE(checkpointed.ToDebugString().find("Parallelize"),
            std::string::npos);
  EXPECT_EQ(checkpointed.Collect(), (std::vector<int>{11, 12, 13, 14}));
  // After the first action the parent edge is cut.
  const std::string lineage = checkpointed.ToDebugString();
  EXPECT_EQ(lineage.find("Parallelize"), std::string::npos);
  EXPECT_NE(lineage.find("lineage truncated"), std::string::npos);
  const auto snapshot = ctx.metrics().Snapshot();
  EXPECT_EQ(snapshot.checkpoint_blocks_written, 2u);
  EXPECT_GT(snapshot.checkpoint_bytes_written, 0u);
}

TEST_F(StorageTest, CheckpointServesActionsWithoutUpstreamRecompute) {
  std::atomic<int> compute_calls{0};
  SparkContext ctx({.num_executors = 2, .checkpoint_dir = Dir("ckpt")});
  auto checkpointed = ctx.Parallelize(std::vector<int>(32, 5), 4)
                          .Map<int>([&compute_calls](int x) {
                            ++compute_calls;
                            return x;
                          })
                          .Checkpoint();
  checkpointed.Count();
  const int after_first = compute_calls.load();
  EXPECT_EQ(after_first, 32);
  checkpointed.Collect();
  checkpointed.Count();
  EXPECT_EQ(compute_calls.load(), after_first);
  EXPECT_GE(ctx.metrics().Snapshot().checkpoint_blocks_read, 8u);
}

TEST_F(StorageTest, RetriedTaskRecoversFromCheckpointNotLineage) {
  // The acceptance scenario: a downstream task fails mid-job; its retry
  // re-reads the checkpointed input instead of recomputing the upstream
  // stage, and the result is bit-exact vs the fault-free run.
  std::vector<int> data(256);
  std::iota(data.begin(), data.end(), 0);

  std::vector<int> fault_free;
  std::atomic<int> upstream_calls{0};
  FaultInjector chaos({.seed = 11});
  SparkContext ctx({.num_executors = 2, .checkpoint_dir = Dir("ckpt")});
  auto checkpointed = ctx.Parallelize(data, 4)
                          .Map<int>([&upstream_calls](int x) {
                            ++upstream_calls;
                            return x * 3;
                          })
                          .Checkpoint();
  auto downstream =
      checkpointed.Map<int>([](int x) { return x + 1; });
  fault_free = downstream.Collect();
  const int upstream_after_materialize = upstream_calls.load();
  const auto before = ctx.metrics().Snapshot();

  // Script one failure into the downstream job, then rerun it.
  chaos.FailPartitionOnAttempt(2, 1);
  ctx.set_fault_injector(&chaos);
  const auto with_fault = downstream.Collect();
  ctx.set_fault_injector(nullptr);

  EXPECT_EQ(with_fault, fault_free);
  const auto after = ctx.metrics().Snapshot();
  EXPECT_EQ(chaos.faults_injected(), 1u);
  EXPECT_GE(after.tasks_failed, before.tasks_failed + 1);
  // Recovery came from checkpoint files, not upstream recomputation.
  EXPECT_GT(after.checkpoint_blocks_read, before.checkpoint_blocks_read);
  EXPECT_EQ(upstream_calls.load(), upstream_after_materialize);
  EXPECT_EQ(after.partitions_recomputed, before.partitions_recomputed);
}

TEST_F(StorageTest, CorruptCheckpointIsATaskErrorNotSilence) {
  SparkContext ctx({.num_executors = 2,
                    .max_task_failures = 2,
                    .checkpoint_dir = Dir("ckpt")});
  auto checkpointed =
      ctx.Parallelize(std::vector<int>{1, 2, 3, 4}, 2).Checkpoint();
  checkpointed.Count();  // materialize snapshots
  ASSERT_GT(CorruptAllBlockFiles(Dir("ckpt")), 0u);
  // Lineage is gone, the snapshot is bad: the job must fail loudly.
  EXPECT_THROW(checkpointed.Collect(), TaskFailedException);
}

TEST_F(StorageTest, DeadPersistedRddReleasesBlocksAndSpillFiles) {
  // The serve loop persists fresh RDDs per micro-batch: when a batch's
  // RDD graph dies, its blocks and spill files must be released, or a
  // long-running context grows memory and disk without bound.
  SparkContext ctx({.num_executors = 2, .spill_dir = Dir("spill")});
  for (int batch = 0; batch < 3; ++batch) {
    auto persisted = ctx.Parallelize(std::vector<int>(128, batch), 4)
                         .Map<int>([](int x) { return x + 1; })
                         .Persist(StorageLevel::kDiskOnly);
    EXPECT_EQ(persisted.Count(), 128u);
    EXPECT_FALSE(fs::is_empty(Dir("spill")));
  }
  // Every batch's RDD is gone: so are its spill files.
  EXPECT_TRUE(fs::is_empty(Dir("spill")));
  EXPECT_EQ(ctx.block_manager().memory_used(), 0u);
}

TEST_F(StorageTest, DeadMemoryPersistReleasesBudget) {
  SparkContext ctx({.num_executors = 2, .memory_budget_bytes = 1 << 20});
  {
    auto persisted = ctx.Parallelize(std::vector<int>(256, 1), 4).Cache();
    EXPECT_EQ(persisted.Count(), 256u);
    EXPECT_GT(ctx.block_manager().memory_used(), 0u);
  }
  EXPECT_EQ(ctx.block_manager().memory_used(), 0u);
}

TEST_F(StorageTest, PersistLevelsShowInLineage) {
  SparkContext ctx({.num_executors = 2, .spill_dir = Dir("spill")});
  auto rdd = ctx.Parallelize(std::vector<int>{1, 2}, 1);
  EXPECT_NE(rdd.Cache().ToDebugString().find("Cache"), std::string::npos);
  EXPECT_NE(rdd.Persist(StorageLevel::kMemoryAndDisk)
                .ToDebugString()
                .find("MEMORY_AND_DISK"),
            std::string::npos);
  EXPECT_NE(rdd.Persist(StorageLevel::kDiskOnly)
                .ToDebugString()
                .find("DISK_ONLY"),
            std::string::npos);
}

}  // namespace
}  // namespace adrdedup::minispark
