// Chaos tests for the minispark task-attempt layer: seeded FaultInjector
// determinism, retry-through-lineage parity (results bit-identical to a
// fault-free run), job-level TaskFailedException once attempts are
// exhausted, and the full Algorithm-2 pipeline under injected faults.
// Carries the `chaos` and `sanitize` ctest labels.
#include "minispark/fault_injector.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dedup_pipeline.h"
#include "datagen/generator.h"
#include "distance/pair_dataset.h"
#include "distance/pairwise.h"
#include "distance/report_features.h"
#include "minispark/context.h"
#include "minispark/pair_rdd.h"
#include "minispark/rdd.h"

namespace adrdedup::minispark {
namespace {

std::vector<int> Iota(int n) {
  std::vector<int> data(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) data[static_cast<size_t>(i)] = i;
  return data;
}

// The (partition, attempt, occurrence) fault schedule as a string, probed
// sequentially so the occurrence counters advance identically per run.
std::string ScheduleOf(FaultInjector& injector, size_t partitions,
                       size_t attempts, size_t occurrences) {
  std::string schedule;
  for (size_t o = 0; o < occurrences; ++o) {
    for (size_t p = 0; p < partitions; ++p) {
      for (size_t a = 1; a <= attempts; ++a) {
        try {
          injector.OnTaskAttempt(p, a);
          schedule += '.';
        } catch (const InjectedFault&) {
          schedule += 'X';
        }
      }
    }
  }
  return schedule;
}

TEST(FaultInjectorTest, SameSeedSameFailureSchedule) {
  const FaultInjector::Options options{.seed = 99,
                                       .failure_probability = 0.3};
  FaultInjector a(options);
  FaultInjector b(options);
  const std::string schedule_a = ScheduleOf(a, 9, 3, 3);
  const std::string schedule_b = ScheduleOf(b, 9, 3, 3);
  EXPECT_EQ(schedule_a, schedule_b);
  // At 30% over 81 draws both outcomes must appear.
  EXPECT_NE(schedule_a.find('X'), std::string::npos);
  EXPECT_NE(schedule_a.find('.'), std::string::npos);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a({.seed = 1, .failure_probability = 0.3});
  FaultInjector b({.seed = 2, .failure_probability = 0.3});
  EXPECT_NE(ScheduleOf(a, 9, 3, 3), ScheduleOf(b, 9, 3, 3));
}

TEST(FaultInjectorTest, RepeatOccurrencesDrawIndependently) {
  // The same (partition, attempt) probed across many stages must not be
  // doomed to a single fate: at 50% over 64 occurrences of (0, 1) both
  // outcomes appear.
  FaultInjector injector({.seed = 7, .failure_probability = 0.5});
  const std::string schedule = ScheduleOf(injector, 1, 1, 64);
  EXPECT_NE(schedule.find('X'), std::string::npos);
  EXPECT_NE(schedule.find('.'), std::string::npos);
}

TEST(ChaosTest, RetriedTasksProduceIdenticalResults) {
  std::vector<int> clean;
  {
    SparkContext ctx({.num_executors = 4});
    clean = ctx.Parallelize(Iota(1000), 8)
                .Map<int>([](const int& x) { return x * 2 + 1; })
                .Collect();
  }

  FaultInjector injector({.seed = 42, .failure_probability = 0.4});
  SparkContext ctx({.num_executors = 4, .fault_injector = &injector});
  const std::vector<int> chaotic =
      ctx.Parallelize(Iota(1000), 8)
          .Map<int>([](const int& x) { return x * 2 + 1; })
          .Collect();

  EXPECT_EQ(chaotic, clean);
  const auto metrics = ctx.metrics().Snapshot();
  EXPECT_GT(injector.faults_injected(), 0u);
  EXPECT_GT(metrics.tasks_failed, 0u);
  EXPECT_GT(metrics.tasks_retried, 0u);
  EXPECT_GT(metrics.task_backoff_ms, 0.0);
  // Every failure either got a retry or would have failed the job.
  EXPECT_EQ(metrics.tasks_failed, metrics.tasks_retried);
}

TEST(ChaosTest, ChaosThroughShuffleMatchesCleanRun) {
  const auto job = [](SparkContext& ctx) {
    auto pairs = ctx.Parallelize(Iota(500), 6)
                     .Map<std::pair<int, int>>([](const int& x) {
                       return std::make_pair(x % 17, x);
                     });
    auto sums = ReduceByKey(pairs, [](int a, int b) { return a + b; });
    auto out = sums.Collect();
    std::sort(out.begin(), out.end());
    return out;
  };

  std::vector<std::pair<int, int>> clean;
  {
    SparkContext ctx({.num_executors = 4});
    clean = job(ctx);
  }
  FaultInjector injector({.seed = 7, .failure_probability = 0.25});
  SparkContext ctx({.num_executors = 4, .fault_injector = &injector});
  EXPECT_EQ(job(ctx), clean);
  EXPECT_GT(injector.faults_injected(), 0u);
}

TEST(ChaosTest, InjectedDelaysNeverChangeResults) {
  FaultInjector injector(
      {.seed = 3, .delay_probability = 0.5, .max_delay_ms = 2.0});
  SparkContext ctx({.num_executors = 4, .fault_injector = &injector});
  const std::vector<int> out =
      ctx.Parallelize(Iota(200), 8)
          .Filter([](const int& x) { return x % 3 == 0; })
          .Collect();
  std::vector<int> expected;
  for (int i = 0; i < 200; i += 3) expected.push_back(i);
  EXPECT_EQ(out, expected);
  EXPECT_GT(injector.delays_injected(), 0u);
  EXPECT_EQ(injector.faults_injected(), 0u);
}

TEST(ChaosTest, ScriptedFaultIsRetriedOnceWithIdenticalResult) {
  FaultInjector injector({.seed = 1});
  injector.FailPartitionOnAttempt(2, 1);
  SparkContext ctx({.num_executors = 4, .fault_injector = &injector});
  const std::vector<int> out = ctx.Parallelize(Iota(100), 8).Collect();
  EXPECT_EQ(out, Iota(100));
  EXPECT_EQ(injector.faults_injected(), 1u);
  const auto metrics = ctx.metrics().Snapshot();
  EXPECT_EQ(metrics.tasks_failed, 1u);
  EXPECT_EQ(metrics.tasks_retried, 1u);
  // 8 partitions, one of which took two attempts.
  EXPECT_EQ(metrics.tasks_launched, 9u);
}

TEST(ChaosTest, ExhaustedRetriesSurfaceJobLevelError) {
  FaultInjector injector({.seed = 1});
  // Script every attempt partition 3 will ever get.
  for (size_t attempt = 1; attempt <= 4; ++attempt) {
    injector.FailPartitionOnAttempt(3, attempt);
  }
  SparkContext ctx({.num_executors = 4,
                    .max_task_failures = 4,
                    .fault_injector = &injector});
  auto rdd = ctx.Parallelize(Iota(100), 8);
  try {
    rdd.Collect();
    FAIL() << "expected TaskFailedException";
  } catch (const TaskFailedException& e) {
    EXPECT_EQ(e.partition(), 3u);
    EXPECT_EQ(e.attempts(), 4u);
    EXPECT_NE(std::string(e.what()).find("partition 3"), std::string::npos)
        << e.what();
    EXPECT_NE(e.root_cause().find("injected fault"), std::string::npos)
        << e.root_cause();
  }
  EXPECT_EQ(ctx.metrics().Snapshot().tasks_failed, 4u);
  // The scheduler stays usable after a failed job.
  EXPECT_EQ(ctx.Parallelize(Iota(10), 2).Count(), 10u);
}

TEST(ChaosTest, MaxTaskFailuresOneFailsFastWithoutRetry) {
  FaultInjector injector({.seed = 1});
  injector.FailPartitionOnAttempt(0, 1);
  SparkContext ctx({.num_executors = 2,
                    .max_task_failures = 1,
                    .fault_injector = &injector});
  auto rdd = ctx.Parallelize(Iota(50), 4);
  EXPECT_THROW(rdd.Collect(), TaskFailedException);
  const auto metrics = ctx.metrics().Snapshot();
  EXPECT_EQ(metrics.tasks_failed, 1u);
  EXPECT_EQ(metrics.tasks_retried, 0u);
}

TEST(ChaosTest, InjectorSwappableAtRuntime) {
  SparkContext ctx({.num_executors = 2});
  EXPECT_EQ(ctx.Parallelize(Iota(20), 4).Count(), 20u);

  FaultInjector always({.seed = 1});
  always.FailPartitionOnAttempt(1, 1);
  ctx.set_fault_injector(&always);
  EXPECT_EQ(ctx.Parallelize(Iota(20), 4).Count(), 20u);  // retried
  EXPECT_EQ(always.faults_injected(), 1u);

  ctx.set_fault_injector(nullptr);
  const auto before = ctx.metrics().Snapshot().tasks_failed;
  EXPECT_EQ(ctx.Parallelize(Iota(20), 4).Count(), 20u);
  EXPECT_EQ(ctx.metrics().Snapshot().tasks_failed, before);
}

// Full Algorithm-2 integration: the dedup pipeline (blocking, distance
// vectors via spark, Fast kNN scoring via spark) under a 10% per-task
// fault rate must produce bit-identical detections to the clean run.
TEST(ChaosTest, DedupPipelineParityUnderInjectedFaults) {
  datagen::GeneratorConfig config;
  config.num_reports = 300;
  config.num_duplicate_pairs = 30;
  config.num_drugs = 80;
  config.num_adrs = 120;
  const auto corpus = datagen::GenerateCorpus(config);
  const auto features = distance::ExtractAllFeatures(corpus.db);

  // The generator appends duplicate copies after all originals (270
  // originals + 30 copies here), so the bootstrap cut must land inside
  // the copy range for the seed to hold positive labels.
  const size_t boot = 285;
  std::vector<report::AdrReport> bootstrap;
  std::vector<report::AdrReport> stream;
  for (size_t i = 0; i < corpus.db.size(); ++i) {
    auto& dest = i < boot ? bootstrap : stream;
    dest.push_back(corpus.db.Get(static_cast<report::ReportId>(i)));
  }
  std::set<uint64_t> dup_keys;
  for (auto [a, b] : corpus.duplicate_pairs) {
    dup_keys.insert(distance::PairKey({std::min(a, b), std::max(a, b)}));
  }
  std::vector<distance::LabeledPair> seed;
  for (auto [a, b] : corpus.duplicate_pairs) {
    if (a >= boot || b >= boot) continue;
    distance::LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    pair.label = +1;
    pair.vector = distance::ComputeDistanceVector(features[a], features[b]);
    seed.push_back(pair);
  }
  util::Rng rng(21);
  while (seed.size() < 600) {
    const auto a = static_cast<report::ReportId>(rng.Uniform(boot));
    const auto b = static_cast<report::ReportId>(rng.Uniform(boot));
    if (a == b) continue;
    distance::ReportPair pair{std::min(a, b), std::max(a, b)};
    if (dup_keys.contains(distance::PairKey(pair))) continue;
    distance::LabeledPair labeled;
    labeled.pair = pair;
    labeled.label = -1;
    labeled.vector =
        distance::ComputeDistanceVector(features[pair.a], features[pair.b]);
    seed.push_back(labeled);
  }

  core::DedupPipelineOptions options;
  options.knn.k = 5;
  options.knn.num_clusters = 8;
  options.theta = 0.0;
  options.f_theta = -1.0;  // no pruning: keep both runs on one code path
  options.use_blocking = false;
  options.auto_refit = false;

  const auto run = [&](SparkContext& ctx) {
    core::DedupPipeline pipeline(&ctx, options);
    pipeline.BootstrapDatabase(bootstrap);
    pipeline.SeedLabels(seed);
    return pipeline.ProcessNewReports(stream);
  };

  core::DedupPipeline::DetectionResult clean;
  {
    SparkContext ctx({.num_executors = 4});
    clean = run(ctx);
  }

  FaultInjector injector({.seed = 2026, .failure_probability = 0.1});
  SparkContext ctx({.num_executors = 4, .fault_injector = &injector});
  const auto chaotic = run(ctx);

  ASSERT_FALSE(clean.duplicates.empty());
  ASSERT_EQ(chaotic.duplicates.size(), clean.duplicates.size());
  for (size_t i = 0; i < clean.duplicates.size(); ++i) {
    EXPECT_EQ(chaotic.duplicates[i].a, clean.duplicates[i].a);
    EXPECT_EQ(chaotic.duplicates[i].b, clean.duplicates[i].b);
    EXPECT_EQ(chaotic.scores[i], clean.scores[i]) << "score drifted at " << i;
  }
  EXPECT_EQ(chaotic.pairs_considered, clean.pairs_considered);

  const auto metrics = ctx.metrics().Snapshot();
  EXPECT_GT(injector.faults_injected(), 0u);
  EXPECT_GT(metrics.tasks_retried, 0u)
      << "chaos run never exercised a retry; raise the corpus size";
}

}  // namespace
}  // namespace adrdedup::minispark
