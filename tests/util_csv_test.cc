#include "util/csv.h"

#include "util/random.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace adrdedup::util {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvParseLineTest, SimpleFields) {
  auto row = CsvParseLine("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a", "b", "c"}));
}

TEST(CsvParseLineTest, EmptyFields) {
  auto row = CsvParseLine("a,,c,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a", "", "c", ""}));
}

TEST(CsvParseLineTest, QuotedFieldWithSeparator) {
  auto row = CsvParseLine("\"a,b\",c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a,b", "c"}));
}

TEST(CsvParseLineTest, DoubledQuotes) {
  auto row = CsvParseLine("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"say \"hi\""}));
}

TEST(CsvParseLineTest, DanglingQuoteFails) {
  EXPECT_FALSE(CsvParseLine("\"unterminated").ok());
}

TEST(CsvParseTest, MultipleRows) {
  auto rows = CsvParse("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows.value()[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto rows = CsvParse("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1], (CsvRow{"c", "d"}));
}

TEST(CsvParseTest, QuotedNewlineSpansLines) {
  auto rows = CsvParse("a,\"multi\nline\"\nnext,row\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1], "multi\nline");
}

TEST(CsvParseTest, MissingTrailingNewlineOk) {
  auto rows = CsvParse("a,b\nc,d");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST(CsvParseTest, UnterminatedQuoteAtEofFails) {
  EXPECT_FALSE(CsvParse("a,\"open\nstill open").ok());
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("adrdedup_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(CsvFileTest, RoundTrip) {
  const std::vector<CsvRow> rows = {
      {"name", "notes"},
      {"alpha", "plain"},
      {"beta", "has,comma"},
      {"gamma", "has \"quote\""},
      {"delta", "multi\nline"},
  };
  ASSERT_TRUE(CsvWriteFile(path_.string(), rows).ok());
  auto read = CsvReadFile(path_.string());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
}

TEST_F(CsvFileTest, ReadMissingFileFails) {
  auto read = CsvReadFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(CsvFuzzTest, RandomContentRoundTrips) {
  // Random fields over a hostile alphabet (separators, quotes, newlines)
  // must survive format -> parse exactly.
  util::Rng rng(55);
  const char alphabet[] = {'a', 'b', ',', '"', '\n', ' ', '1', '\r'};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<CsvRow> rows;
    const size_t num_rows = 1 + rng.Uniform(5);
    const size_t num_cols = 1 + rng.Uniform(5);
    std::string text;
    for (size_t r = 0; r < num_rows; ++r) {
      CsvRow row;
      for (size_t c = 0; c < num_cols; ++c) {
        std::string field;
        for (size_t i = 0; i < rng.Uniform(10); ++i) {
          field.push_back(alphabet[rng.Uniform(std::size(alphabet))]);
        }
        row.push_back(std::move(field));
      }
      text += CsvFormatRow(row);
      text += '\n';
      rows.push_back(std::move(row));
    }
    auto parsed = CsvParse(text);
    ASSERT_TRUE(parsed.ok()) << "trial " << trial;
    ASSERT_EQ(parsed.value(), rows) << "trial " << trial;
  }
}

// RFC 4180 regression coverage: the writer must quote on bare CR (not
// just LF), preserve whitespace verbatim, and survive quotes at field
// boundaries; the parser must accept what the writer emits byte-for-byte.
TEST(CsvRfc4180Test, CarriageReturnAloneForcesQuoting) {
  EXPECT_EQ(CsvEscape("a\rb"), "\"a\rb\"");
  auto rows = CsvParse(CsvFormatRow({"a\rb", "c"}) + "\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a\rb", "c"}));
}

TEST(CsvRfc4180Test, CrLfInsideQuotedFieldIsData) {
  // A CRLF inside quotes is field content; only the record-terminating
  // CRLF is a line break.
  auto rows = CsvParse("a,\"x\r\ny\"\r\nnext,row\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1], "x\r\ny");
  EXPECT_EQ(rows.value()[1], (CsvRow{"next", "row"}));
}

TEST(CsvRfc4180Test, LeadingAndTrailingSpacesArePreserved) {
  // RFC 4180: "Spaces are considered part of a field and should not be
  // ignored."
  EXPECT_EQ(CsvEscape("  padded  "), "  padded  ");
  auto row = CsvParseLine(" a , b ");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{" a ", " b "}));
}

TEST(CsvRfc4180Test, QuoteOnlyAndBoundaryQuoteFields) {
  const CsvRow original = {"\"", "\"\"", "end\"", "\"start", "mid\"dle"};
  EXPECT_EQ(CsvEscape("\""), "\"\"\"\"");
  auto parsed = CsvParseLine(CsvFormatRow(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), original);
}

TEST(CsvRfc4180Test, EmptyRowAndAllEmptyFields) {
  EXPECT_EQ(CsvFormatRow({""}), "");
  EXPECT_EQ(CsvFormatRow({"", "", ""}), ",,");
  auto row = CsvParseLine(",,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"", "", ""}));
}

TEST(CsvRfc4180Test, QuoteOpensOnlyAtFieldStart) {
  // A quote later in an unquoted field is literal data (lenient reading
  // of the RFC; matches what spreadsheet exports produce).
  auto row = CsvParseLine("5\"2,x");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"5\"2", "x"}));
}

TEST_F(CsvFileTest, HostileFieldsSurviveFileRoundTrip) {
  const std::vector<CsvRow> rows = {
      {"case", "narrative"},
      {"A-1", "fever,\"chills\"\r\nand \"nausea\""},
      {"A-2", "\r"},
      {"A-3", ",,,"},
      {"A-4", "  spaced  "},
  };
  ASSERT_TRUE(CsvWriteFile(path_.string(), rows).ok());
  auto read = CsvReadFile(path_.string());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
}

TEST(CsvFormatRowTest, RoundTripsThroughParse) {
  const CsvRow original = {"a", "b,c", "d\"e", "f\ng", ""};
  auto parsed = CsvParseLine(CsvFormatRow(original));
  // Embedded newline survives only through full CsvParse.
  auto parsed_full = CsvParse(CsvFormatRow(original) + "\n");
  ASSERT_TRUE(parsed_full.ok());
  ASSERT_EQ(parsed_full.value().size(), 1u);
  EXPECT_EQ(parsed_full.value()[0], original);
  (void)parsed;
}

}  // namespace
}  // namespace adrdedup::util
