#include "datagen/description_gen.h"

#include <set>

#include <gtest/gtest.h>

#include "text/text_pipeline.h"
#include "util/random.h"

namespace adrdedup::datagen {
namespace {

CaseFacts SampleFacts() {
  CaseFacts facts;
  facts.age = 54;
  facts.sex = "M";
  facts.drugs = {"Atorvastatin"};
  facts.reactions = {"Rhabdomyolysis", "Myalgia"};
  facts.onset_date = "30/04/2013";
  facts.outcome = "Recovered";
  facts.reporter_type = "Hospital";
  facts.reference_number = "AU-100042";
  return facts;
}

TEST(DescriptionGenTest, EveryTemplateMentionsTheCoreFacts) {
  util::Rng rng(1);
  const CaseFacts facts = SampleFacts();
  for (size_t t = 0; t < NumDescriptionTemplates(); ++t) {
    const std::string text = RenderDescription(facts, t, &rng);
    EXPECT_NE(text.find("Atorvastatin"), std::string::npos) << t;
    EXPECT_NE(text.find("Rhabdomyolysis"), std::string::npos) << t;
    EXPECT_NE(text.find("Recovered"), std::string::npos) << t;
    if (t != 2) {
      // The consumer-timeline template narrates without the age.
      EXPECT_NE(text.find("54"), std::string::npos) << t;
    }
  }
}

TEST(DescriptionGenTest, TemplatesProduceDistinctPhrasings) {
  util::Rng rng(2);
  const CaseFacts facts = SampleFacts();
  std::set<std::string> renderings;
  for (size_t t = 0; t < NumDescriptionTemplates(); ++t) {
    renderings.insert(RenderDescription(facts, t, &rng));
  }
  EXPECT_EQ(renderings.size(), NumDescriptionTemplates());
}

TEST(DescriptionGenTest, SameTemplateSharesMoreTokensThanDifferent) {
  // The channel-overlap duplicate model depends on this: re-rendering
  // through the same template is much closer (token-wise) than switching
  // templates.
  const CaseFacts facts = SampleFacts();
  util::Rng rng_a(3);
  util::Rng rng_b(4);
  util::Rng rng_c(5);
  const std::string same_1 = RenderDescription(facts, 0, &rng_a);
  const std::string same_2 = RenderDescription(facts, 0, &rng_b);
  const std::string other = RenderDescription(facts, 2, &rng_c);
  const double d_same = text::FreeTextJaccardDistance(same_1, same_2);
  const double d_other = text::FreeTextJaccardDistance(same_1, other);
  EXPECT_LT(d_same, d_other);
  EXPECT_LT(d_same, 0.45);
}

TEST(DescriptionGenTest, TemplateIndexWrapsModulo) {
  const CaseFacts facts = SampleFacts();
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  EXPECT_EQ(RenderDescription(facts, 1, &rng_a),
            RenderDescription(facts, 1 + NumDescriptionTemplates(),
                              &rng_b));
}

TEST(DescriptionGenTest, NarrativeLengthInPaperBand) {
  util::Rng rng(7);
  CaseFacts facts = SampleFacts();
  facts.reactions = {"Vomiting", "Pyrexia", "Cough", "Headache"};
  facts.drugs = {"Influenza Vaccine", "Dtpa Vaccine"};
  for (size_t t = 0; t < NumDescriptionTemplates(); ++t) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::string text = RenderDescription(facts, t, &rng);
      EXPECT_GT(text.size(), 120u);
      EXPECT_LT(text.size(), 600u);
    }
  }
}

TEST(DescriptionGenTest, MultipleDrugsJoinedNaturally) {
  util::Rng rng(8);
  CaseFacts facts = SampleFacts();
  facts.drugs = {"DrugA", "DrugB", "DrugC"};
  const std::string text = RenderDescription(facts, 1, &rng);
  EXPECT_NE(text.find("DrugA, DrugB and DrugC"), std::string::npos);
}

}  // namespace
}  // namespace adrdedup::datagen
