#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace adrdedup::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  pool.ParallelFor(0, 64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mutex);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, TasksExecutedCounterGrows) {
  ThreadPool pool(2);
  const uint64_t before = pool.tasks_executed();
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(pool.Submit([] {}));
  for (auto& f : futures) f.get();
  EXPECT_EQ(pool.tasks_executed(), before + 10);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
    // Destructor must wait for all 50.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForDrainsAllBlocksBeforeRethrowing) {
  // Regression: ParallelFor used to unwind on the first future.get() that
  // threw, while later blocks were still queued holding a reference to
  // the caller's fn — a use-after-scope once the stack frame died. With
  // 16 iterations on a 4-thread pool every block holds exactly one
  // iteration (num_blocks = workers * 4), so "every block drained" is
  // observable: all 15 non-throwing iterations must have run by the time
  // the exception surfaces, deterministically.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(0, 16,
                                [&](size_t i) {
                                  if (i == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                  ++ran;
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 15);
}

TEST(ThreadPoolTest, ParallelForManyThrowingIterationsStillDrains) {
  // Half the single-iteration blocks throw; ParallelFor must still wait
  // for all of them (swallowing the extra exceptions) and rethrow one.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(0, 16,
                                [&](size_t i) {
                                  ++ran;
                                  if (i % 2 == 0) {
                                    throw std::runtime_error("even");
                                  }
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ParallelForUsableAfterThrow) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 64, [](size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> ran{0};
  pool.ParallelFor(0, 64, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForWithPerIterationRetriesDrainsAndKeepsFirstCause) {
  // The task-attempt pattern minispark layers on top of ParallelFor: each
  // iteration retries its body a bounded number of times and rethrows the
  // last cause once exhausted. ParallelFor must still drain every block
  // and surface the exception from the lowest block/index — iteration 3,
  // not iteration 7 — so job-level errors are deterministic.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::atomic<int> attempts_3{0};
  std::atomic<int> attempts_7{0};
  const auto attempt_with_retries = [&](size_t i) {
    constexpr int kMaxAttempts = 3;
    for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
      try {
        if (i == 3) {
          ++attempts_3;
          throw std::runtime_error("iteration 3 exhausted");
        }
        if (i == 7) {
          ++attempts_7;
          throw std::runtime_error("iteration 7 exhausted");
        }
        ++ran;
        return;
      } catch (...) {
        if (attempt == kMaxAttempts) throw;
      }
    }
  };
  try {
    pool.ParallelFor(0, 16, attempt_with_retries);
    FAIL() << "expected the exhausted retries to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "iteration 3 exhausted");
  }
  // Every healthy iteration ran despite two iterations failing, and both
  // failing iterations used their full retry budget.
  EXPECT_EQ(ran.load(), 14);
  EXPECT_EQ(attempts_3.load(), 3);
  EXPECT_EQ(attempts_7.load(), 3);
}

TEST(ThreadPoolTest, ParallelForPropagatesWorkOrderIndependence) {
  // Result must not depend on thread count.
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(500);
    pool.ParallelFor(0, 500, [&](size_t i) {
      out[i] = static_cast<double>(i) * 0.5;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

}  // namespace
}  // namespace adrdedup::util
