#include "minispark/cluster_model.h"

#include <gtest/gtest.h>

#include "minispark/rdd.h"
#include "util/random.h"

namespace adrdedup::minispark {
namespace {

TEST(LptMakespanTest, SingleExecutorIsSum) {
  EXPECT_DOUBLE_EQ(
      ClusterCostModel::LptMakespan({1.0, 2.0, 3.0}, 1), 6.0);
}

TEST(LptMakespanTest, PerfectSplit) {
  EXPECT_DOUBLE_EQ(
      ClusterCostModel::LptMakespan({2.0, 2.0, 2.0, 2.0}, 4), 2.0);
  EXPECT_DOUBLE_EQ(
      ClusterCostModel::LptMakespan({3.0, 1.0, 2.0, 2.0}, 2), 4.0);
}

TEST(LptMakespanTest, BoundedByLongestTask) {
  EXPECT_DOUBLE_EQ(ClusterCostModel::LptMakespan({5.0, 0.1, 0.1}, 8), 5.0);
}

TEST(LptMakespanTest, EmptyTasks) {
  EXPECT_DOUBLE_EQ(ClusterCostModel::LptMakespan({}, 4), 0.0);
}

TEST(LptMakespanTest, MonotoneInExecutors) {
  util::Rng rng(1);
  std::vector<double> tasks;
  for (int i = 0; i < 200; ++i) tasks.push_back(rng.UniformDouble(0.1, 2.0));
  double previous = 1e300;
  for (size_t e = 1; e <= 32; e *= 2) {
    const double makespan = ClusterCostModel::LptMakespan(tasks, e);
    EXPECT_LE(makespan, previous + 1e-12);
    previous = makespan;
    // Never below the theoretical lower bounds.
    double sum = 0.0;
    double longest = 0.0;
    for (double t : tasks) {
      sum += t;
      longest = std::max(longest, t);
    }
    EXPECT_GE(makespan + 1e-12, sum / static_cast<double>(e));
    EXPECT_GE(makespan + 1e-12, longest);
  }
}

TEST(ClusterCostModelTest, CoordinationTermCreatesFlattening) {
  // With enough executors the coordination term dominates and the curve
  // turns — the Fig. 10(a) flattening.
  ClusterCostModel model;
  std::vector<double> tasks(64, 1.0);
  const double at_8 = model.SimulateExecutionSeconds(tasks, 0, 8);
  const double at_64 = model.SimulateExecutionSeconds(tasks, 0, 64);
  const double at_2000 = model.SimulateExecutionSeconds(tasks, 0, 2000);
  EXPECT_LT(at_64, at_8);
  EXPECT_GT(at_2000, at_64);  // over-provisioning eventually costs
}

TEST(ClusterCostModelTest, ShuffleBytesAddTransferTime) {
  ClusterCostModel model;
  const double without = model.SimulateExecutionSeconds({1.0}, 0, 2);
  const double with =
      model.SimulateExecutionSeconds({1.0}, 2'000'000'000ULL, 2);
  EXPECT_NEAR(with - without, 2.0, 1e-9);
}

TEST(ClusterCostModelTest, IntegratesWithContextTaskDurations) {
  SparkContext ctx({.num_executors = 2});
  ctx.metrics().Reset();
  ctx.Parallelize(std::vector<int>(1000, 1), 8)
      .Map<int>([](int x) { return x + 1; })
      .Count();
  const auto durations = ctx.metrics().TaskDurations();
  EXPECT_EQ(durations.size(), 8u);
  for (double d : durations) EXPECT_GE(d, 0.0);
  ClusterCostModel model;
  EXPECT_GT(model.SimulateExecutionSeconds(durations, 0, 4), 0.0);
}

}  // namespace
}  // namespace adrdedup::minispark
