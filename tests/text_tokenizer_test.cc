#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace adrdedup::text {
namespace {

TEST(TokenizeTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizeTest, DatesSplitIntoComponents) {
  EXPECT_EQ(Tokenize("02-Oct-2013"),
            (std::vector<std::string>{"02", "oct", "2013"}));
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... --- !!!").empty());
}

TEST(TokenizeTest, PreservesDigitsInsideWords) {
  EXPECT_EQ(Tokenize("B12 deficiency"),
            (std::vector<std::string>{"b12", "deficiency"}));
}

TEST(TokenizeTest, ClinicalSentence) {
  const auto tokens = Tokenize(
      "The 46-year-old male subject started treatment with atorvastatin "
      "calcium 80 mg.");
  EXPECT_EQ(tokens.size(), 13u);
  EXPECT_EQ(tokens.front(), "the");
  EXPECT_EQ(tokens[1], "46");
  EXPECT_EQ(tokens.back(), "mg");
}

TEST(TokenizeKeepingLongNumbersTest, DropsShortPureNumbers) {
  const auto tokens =
      TokenizeKeepingLongNumbers("dose 80 mg on 20131002", 5);
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"dose", "mg", "on", "20131002"}));
}

TEST(TokenizeKeepingLongNumbersTest, KeepsAlphanumericTokens) {
  const auto tokens = TokenizeKeepingLongNumbers("b12 x 9", 3);
  EXPECT_EQ(tokens, (std::vector<std::string>{"b12", "x"}));
}

TEST(TokenizeKeepingLongNumbersTest, ZeroThresholdKeepsEverything) {
  EXPECT_EQ(TokenizeKeepingLongNumbers("a 1 2", 0),
            Tokenize("a 1 2"));
}

TEST(CharacterShinglesTest, BasicTrigrams) {
  EXPECT_EQ(CharacterShingles("aspirin", 3),
            (std::vector<std::string>{"asp", "spi", "pir", "iri", "rin"}));
}

TEST(CharacterShinglesTest, NormalizesCaseAndGaps) {
  EXPECT_EQ(CharacterShingles("Ab  Cd", 3),
            (std::vector<std::string>{"ab_", "b_c", "_cd"}));
}

TEST(CharacterShinglesTest, ShortInputsYieldWholeString) {
  EXPECT_EQ(CharacterShingles("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_EQ(CharacterShingles("abc", 3),
            (std::vector<std::string>{"abc"}));
  EXPECT_TRUE(CharacterShingles("!!", 3).empty());
  EXPECT_TRUE(CharacterShingles("", 3).empty());
}

TEST(CharacterShinglesTest, TypoRobustnessVsWordTokens) {
  // One substituted character: word tokens disagree entirely; most
  // shingles still match — the motivation for shingle-based comparison.
  const auto clean = CharacterShingles("atorvastatin", 3);
  const auto typo = CharacterShingles("atorvastetin", 3);
  size_t common = 0;
  for (const auto& shingle : clean) {
    for (const auto& other : typo) {
      if (shingle == other) {
        ++common;
        break;
      }
    }
  }
  EXPECT_GE(common * 10, clean.size() * 6);  // >= 60% shingle overlap
}

TEST(CharacterShinglesTest, UnigramsEqualCharacters) {
  EXPECT_EQ(CharacterShingles("abc", 1),
            (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace adrdedup::text
