// Randomized pipeline fuzzing: build random chains of minispark
// transformations and assert that the result is identical regardless of
// executor count and partitioning — the core determinism contract that
// lets the experiment harnesses vary parallelism freely.
#include <numeric>
#include <string>

#include <gtest/gtest.h>

#include "minispark/pair_rdd.h"
#include "minispark/rdd.h"
#include "util/random.h"

namespace adrdedup::minispark {
namespace {

// Applies a random chain of `steps` deterministic transformations
// (chosen by `rng`'s stream) to the input and collects.
std::vector<int> RunRandomPipeline(SparkContext* ctx,
                                   const std::vector<int>& input,
                                   size_t partitions, uint64_t chain_seed,
                                   size_t steps) {
  util::Rng rng(chain_seed);
  auto rdd = ctx->Parallelize(input, partitions);
  for (size_t s = 0; s < steps; ++s) {
    switch (rng.Uniform(7)) {
      case 0: {
        const int offset = static_cast<int>(rng.UniformInt(-5, 5));
        rdd = rdd.Map<int>([offset](int x) { return x + offset; });
        break;
      }
      case 1: {
        const int modulus = static_cast<int>(rng.UniformInt(2, 5));
        rdd = rdd.Filter([modulus](int x) {
          return x % modulus != 0;
        });
        break;
      }
      case 2: {
        rdd = rdd.FlatMap<int>([](int x) {
          return std::vector<int>{x, -x};
        });
        break;
      }
      case 3:
        rdd = rdd.Repartition(1 + rng.Uniform(6));
        break;
      case 4:
        rdd = rdd.Cache();
        break;
      case 5:
        rdd = rdd.SortBy<int>([](int x) { return x; });
        break;
      case 6: {
        const uint64_t sample_seed = rng.Next();
        rdd = rdd.Sample(0.8, sample_seed);
        break;
      }
    }
  }
  // Order may legitimately differ across partitionings after shuffling
  // ops, so compare as multisets.
  auto out = rdd.Collect();
  std::sort(out.begin(), out.end());
  return out;
}

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, ResultIndependentOfExecutorCount) {
  // Sample() is deterministic per (seed, partition), so results are a
  // function of the partition layout; the contract under test is that
  // for a FIXED layout the executor count never changes the answer.
  const uint64_t chain_seed = GetParam();
  std::vector<int> input(400);
  std::iota(input.begin(), input.end(), -200);

  SparkContext one(SparkContext::Config{.num_executors = 1});
  SparkContext many(SparkContext::Config{.num_executors = 8});
  for (size_t partitions : {1u, 5u, 13u}) {
    const auto reference =
        RunRandomPipeline(&one, input, partitions, chain_seed, 6);
    EXPECT_EQ(RunRandomPipeline(&many, input, partitions, chain_seed, 6),
              reference)
        << "partitions=" << partitions << " seed=" << chain_seed;
    // Re-running on the same context is stable too.
    EXPECT_EQ(RunRandomPipeline(&many, input, partitions, chain_seed, 6),
              reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Chains, PipelineFuzz,
                         ::testing::Range<uint64_t>(1, 21));

TEST(PairPipelineFuzz, ReduceByKeyStableAcrossLayouts) {
  util::Rng rng(99);
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 2000; ++i) {
    data.emplace_back(static_cast<int>(rng.Uniform(37)),
                      static_cast<int>(rng.UniformInt(-100, 100)));
  }
  SparkContext one(SparkContext::Config{.num_executors = 1});
  SparkContext many(SparkContext::Config{.num_executors = 6});
  auto run = [&](SparkContext* ctx, size_t in_parts, size_t out_parts) {
    auto sums = ReduceByKey(ctx->Parallelize(data, in_parts),
                            [](int a, int b) { return a + b; }, out_parts);
    return CollectAsMap(sums);
  };
  const auto reference = run(&one, 1, 1);
  for (auto [in_parts, out_parts] :
       {std::pair{3u, 2u}, std::pair{8u, 8u}, std::pair{16u, 3u}}) {
    EXPECT_EQ(run(&many, in_parts, out_parts), reference);
  }
}

}  // namespace
}  // namespace adrdedup::minispark
