#include "distance/pair_dataset.h"

#include <set>

#include <gtest/gtest.h>

namespace adrdedup::distance {
namespace {

struct Fixture {
  Fixture() {
    datagen::GeneratorConfig config;
    config.num_reports = 1200;
    config.num_duplicate_pairs = 80;
    config.num_drugs = 150;
    config.num_adrs = 250;
    corpus = datagen::GenerateCorpus(config);
    features = ExtractAllFeatures(corpus.db);
  }
  datagen::GeneratedCorpus corpus;
  std::vector<ReportFeatures> features;
};

Fixture& SharedFixture() {
  static Fixture& fixture = *new Fixture();
  return fixture;
}

TEST(PairDatasetTest, RequestedSizesRespected) {
  DatasetSpec spec;
  spec.num_training_pairs = 5000;
  spec.num_testing_pairs = 1000;
  auto datasets =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  EXPECT_EQ(datasets.train.pairs.size(), 5000u);
  EXPECT_EQ(datasets.test.pairs.size(), 1000u);
}

TEST(PairDatasetTest, PositivesSplitByFraction) {
  DatasetSpec spec;
  spec.num_training_pairs = 5000;
  spec.num_testing_pairs = 1000;
  spec.positive_train_fraction = 0.75;
  auto datasets =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  EXPECT_EQ(datasets.train.CountPositive(), 60u);  // 0.75 * 80
  EXPECT_EQ(datasets.test.CountPositive(), 20u);
  EXPECT_EQ(datasets.train.CountNegative(), 5000u - 60u);
}

TEST(PairDatasetTest, TrainAndTestDisjoint) {
  DatasetSpec spec;
  spec.num_training_pairs = 4000;
  spec.num_testing_pairs = 2000;
  auto datasets =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  std::set<uint64_t> train_keys;
  for (const auto& pair : datasets.train.pairs) {
    EXPECT_TRUE(train_keys.insert(PairKey(pair.pair)).second)
        << "duplicate pair inside training set";
  }
  for (const auto& pair : datasets.test.pairs) {
    EXPECT_FALSE(train_keys.contains(PairKey(pair.pair)))
        << "pair leaked between train and test";
  }
}

TEST(PairDatasetTest, LabelsMatchGroundTruth) {
  DatasetSpec spec;
  spec.num_training_pairs = 3000;
  spec.num_testing_pairs = 500;
  auto datasets =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  std::set<uint64_t> truth;
  for (auto [a, b] : SharedFixture().corpus.duplicate_pairs) {
    truth.insert(PairKey({std::min(a, b), std::max(a, b)}));
  }
  for (const auto& dataset : {datasets.train, datasets.test}) {
    for (const auto& pair : dataset.pairs) {
      EXPECT_EQ(pair.is_positive(), truth.contains(PairKey(pair.pair)));
    }
  }
}

TEST(PairDatasetTest, VectorsMatchDirectComputation) {
  DatasetSpec spec;
  spec.num_training_pairs = 1000;
  spec.num_testing_pairs = 200;
  auto datasets =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  for (size_t i = 0; i < 50; ++i) {
    const auto& pair = datasets.train.pairs[i];
    EXPECT_EQ(pair.vector,
              ComputeDistanceVector(SharedFixture().features[pair.pair.a],
                                    SharedFixture().features[pair.pair.b]));
  }
}

TEST(PairDatasetTest, DeterministicInSeed) {
  DatasetSpec spec;
  spec.num_training_pairs = 2000;
  spec.num_testing_pairs = 400;
  auto d1 =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  auto d2 =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  ASSERT_EQ(d1.train.pairs.size(), d2.train.pairs.size());
  for (size_t i = 0; i < d1.train.pairs.size(); ++i) {
    ASSERT_EQ(PairKey(d1.train.pairs[i].pair),
              PairKey(d2.train.pairs[i].pair));
  }
}

TEST(PairDatasetTest, SiblingFractionZeroMeansRandomNegativesOnly) {
  DatasetSpec spec;
  spec.num_training_pairs = 2000;
  spec.num_testing_pairs = 400;
  spec.sibling_negative_fraction = 0.0;
  auto datasets =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  std::set<uint64_t> siblings;
  for (auto [a, b] : SharedFixture().corpus.sibling_pairs) {
    siblings.insert(PairKey({std::min(a, b), std::max(a, b)}));
  }
  // Random sampling may still hit the odd sibling pair by chance, but the
  // deliberate injection is off, so hits should be very rare.
  size_t hits = 0;
  for (const auto& pair : datasets.train.pairs) {
    if (siblings.contains(PairKey(pair.pair))) ++hits;
  }
  EXPECT_LT(hits, 10u);
}

TEST(PairDatasetTest, HighlyImbalancedByConstruction) {
  DatasetSpec spec;
  spec.num_training_pairs = 20000;
  spec.num_testing_pairs = 1000;
  auto datasets =
      BuildDatasets(SharedFixture().corpus, SharedFixture().features, spec);
  // Positive rate stays far below 1% — the Section 3 imbalance.
  EXPECT_LT(datasets.train.CountPositive() * 100,
            datasets.train.pairs.size());
}

TEST(PairDatasetTest, OverdrawnUniverseDies) {
  datagen::GeneratorConfig config;
  config.num_reports = 60;
  config.num_duplicate_pairs = 5;
  config.num_drugs = 20;
  config.num_adrs = 30;
  auto corpus = datagen::GenerateCorpus(config);
  auto features = ExtractAllFeatures(corpus.db);
  DatasetSpec spec;
  spec.num_training_pairs = 2000;  // universe is only C(60,2) = 1770
  spec.num_testing_pairs = 500;
  EXPECT_DEATH(
      { auto d = BuildDatasets(corpus, features, spec); (void)d; },
      "pair universe");
}

}  // namespace
}  // namespace adrdedup::distance
