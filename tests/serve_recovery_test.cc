// Crash recovery for the screening service (DESIGN.md §5h): the
// serving-state codec, the atomic snapshot store's fail-closed loading,
// graceful-restart and kill-and-restart bit-identical recovery, the
// /healthz lifecycle, and the mismatched-bootstrap guards. Carries the
// `sanitize` label (service threads) and rides in `ctest -L durability`.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "distance/pair_dataset.h"
#include "serve/journal.h"
#include "serve/screening_service.h"
#include "serve/snapshot.h"
#include "util/fault_fs.h"
#include "util/random.h"

// TSan does not support spawning fresh threads in a forked child, so the
// kill-and-restart test skips itself there (ASan/UBSan run it fine).
#if defined(__SANITIZE_THREAD__)
#define ADRDEDUP_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ADRDEDUP_TSAN_BUILD 1
#endif
#endif

namespace adrdedup::serve {
namespace {

namespace fs = std::filesystem;
using distance::LabeledPair;
using distance::PairKey;

// ---------------------------------------------------------------------------
// Shared corpus (generated once; every test screens slices of it)

struct RecoveryFixture {
  RecoveryFixture() {
    datagen::GeneratorConfig config;
    config.num_reports = 400;
    config.num_duplicate_pairs = 30;
    config.num_drugs = 80;
    config.num_adrs = 120;
    corpus = datagen::GenerateCorpus(config);
    features = distance::ExtractAllFeatures(corpus.db);
  }
  datagen::GeneratedCorpus corpus;
  std::vector<distance::ReportFeatures> features;
};

RecoveryFixture& Fixture() {
  static RecoveryFixture& fixture = *new RecoveryFixture();
  return fixture;
}

core::DedupPipelineOptions PipelineOptions() {
  core::DedupPipelineOptions options;
  options.knn.k = 7;
  options.knn.num_clusters = 10;
  options.theta = 0.0;
  options.f_theta = 0.9;
  options.use_blocking = true;
  options.blocking.keys = {blocking::BlockingKey::kDrugToken,
                           blocking::BlockingKey::kAdrToken};
  return options;
}

std::vector<LabeledPair> SeedFromTruth(const RecoveryFixture& fixture,
                                       size_t boot, size_t negatives) {
  std::vector<LabeledPair> seed;
  std::set<uint64_t> dups;
  for (auto [a, b] : fixture.corpus.duplicate_pairs) {
    dups.insert(PairKey({std::min(a, b), std::max(a, b)}));
    if (a >= boot || b >= boot) continue;
    LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    pair.label = +1;
    pair.vector =
        ComputeDistanceVector(fixture.features[a], fixture.features[b]);
    seed.push_back(pair);
  }
  util::Rng rng(21);
  while (seed.size() < negatives) {
    const auto a = static_cast<report::ReportId>(rng.Uniform(boot));
    const auto b = static_cast<report::ReportId>(rng.Uniform(boot));
    if (a == b) continue;
    distance::ReportPair pair{std::min(a, b), std::max(a, b)};
    if (dups.contains(PairKey(pair))) continue;
    LabeledPair labeled;
    labeled.pair = pair;
    labeled.label = -1;
    labeled.vector = ComputeDistanceVector(fixture.features[pair.a],
                                           fixture.features[pair.b]);
    seed.push_back(labeled);
  }
  return seed;
}

std::vector<report::AdrReport> Slice(const RecoveryFixture& fixture,
                                     size_t begin, size_t end) {
  std::vector<report::AdrReport> out;
  for (size_t i = begin; i < end; ++i) {
    out.push_back(fixture.corpus.db.Get(static_cast<report::ReportId>(i)));
  }
  return out;
}

// Deterministic durable serving: one request per micro-batch and no
// background refreshes, so two runs over the same stream take the same
// batch sequence — the precondition for bit-identical comparison.
ScreeningServiceOptions DurableOptions(const std::string& journal_dir) {
  ScreeningServiceOptions options;
  options.pipeline = PipelineOptions();
  options.max_batch = 1;
  options.max_linger_ms = 0.0;
  options.refresh_every = 0;
  options.journal_dir = journal_dir;
  options.fsync_policy = FsyncPolicy::kAlways;
  return options;
}

// One screened report's decision, compared field-for-field (scores must
// be bit-equal — recovery promises bit-identical state, not "close").
struct Decision {
  report::ReportId assigned_id = 0;
  std::vector<ScreenMatch> matches;
};

bool SameDecision(const Decision& a, const Decision& b) {
  if (a.assigned_id != b.assigned_id) return false;
  if (a.matches.size() != b.matches.size()) return false;
  for (size_t i = 0; i < a.matches.size(); ++i) {
    if (a.matches[i].other != b.matches[i].other) return false;
    if (a.matches[i].other_case_number != b.matches[i].other_case_number) {
      return false;
    }
    if (a.matches[i].score != b.matches[i].score) return false;
  }
  return true;
}

Decision ScreenOne(ScreeningService& service,
                   const report::AdrReport& report) {
  auto response = service.Screen(report);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  Decision decision;
  decision.assigned_id = response.value().assigned_id;
  decision.matches = response.value().matches;
  return decision;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultFs::Instance().ClearScript();
    dir_ = fs::temp_directory_path() /
           ("adrdedup-recovery-test-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultFs::Instance().ClearScript();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Dir(const char* name) const {
    fs::create_directories(dir_ / name);
    return (dir_ / name).string();
  }

  static void CorruptByte(const std::string& path, uint64_t offset) {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// ServingState codec

ServingState MakeState(const RecoveryFixture& fixture) {
  ServingState state;
  state.bootstrap_size = 7;
  state.admitted = Slice(fixture, 0, 3);
  state.pipeline.negatives_seen = 42;
  state.pipeline.model_generation = 3;
  state.pipeline.pruner_fit_positives = 2;
  LabeledPair pair;
  pair.pair = {1, 2};
  pair.label = +1;
  pair.vector = ComputeDistanceVector(fixture.features[1],
                                      fixture.features[2]);
  state.pipeline.positive_store = {pair};
  state.corpus_fingerprint = 0xfeedfacecafebeefULL;
  return state;
}

TEST_F(RecoveryTest, ServingStateCodecRoundTrips) {
  const ServingState state = MakeState(Fixture());
  const std::string bytes = EncodeServingState(state);
  ServingState decoded;
  auto status = DecodeServingState(bytes, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded.bootstrap_size, state.bootstrap_size);
  EXPECT_EQ(decoded.admitted, state.admitted);
  EXPECT_EQ(decoded.corpus_fingerprint, state.corpus_fingerprint);
  EXPECT_EQ(decoded.pipeline.negatives_seen, 42u);
  EXPECT_EQ(decoded.pipeline.model_generation, 3u);
  EXPECT_EQ(decoded.pipeline.pruner_fit_positives, 2u);
  ASSERT_EQ(decoded.pipeline.positive_store.size(), 1u);
  EXPECT_EQ(decoded.pipeline.positive_store[0].vector,
            state.pipeline.positive_store[0].vector);
}

TEST_F(RecoveryTest, ServingStateCodecFailsClosed) {
  const std::string bytes = EncodeServingState(MakeState(Fixture()));
  ServingState decoded;
  // Truncation at any point must fail, never partially decode.
  for (size_t keep : {size_t{0}, size_t{4}, bytes.size() / 2,
                      bytes.size() - 1}) {
    EXPECT_FALSE(
        DecodeServingState(std::string_view(bytes).substr(0, keep), &decoded)
            .ok())
        << "decoded a " << keep << "-byte prefix";
  }
  EXPECT_FALSE(DecodeServingState(bytes + "x", &decoded).ok())
      << "accepted trailing bytes";
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x40;
  EXPECT_FALSE(DecodeServingState(bad_magic, &decoded).ok());
}

// ---------------------------------------------------------------------------
// SnapshotStore

TEST_F(RecoveryTest, SnapshotStorePublishLoadRoundTrips) {
  SnapshotStore store(Dir("wal"));
  const ServingState state = MakeState(Fixture());
  const std::string model_bytes = "not-a-real-model-but-crc-checked";
  ASSERT_TRUE(store.WriteSnapshotFiles(1, state, model_bytes).ok());
  ASSERT_TRUE(Journal::Create(store.JournalPath(1), 1,
                              FsyncPolicy::kNever)
                  .ok());
  ASSERT_TRUE(store.PublishGeneration(1).ok());

  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().generation, 1u);
  EXPECT_EQ(loaded.value().model_bytes, model_bytes);
  EXPECT_EQ(loaded.value().state.bootstrap_size, state.bootstrap_size);
  EXPECT_EQ(loaded.value().state.admitted, state.admitted);
  EXPECT_EQ(loaded.value().state.corpus_fingerprint,
            state.corpus_fingerprint);

  // Publishing generation 2 then retiring 1 leaves CURRENT at 2.
  ASSERT_TRUE(store.WriteSnapshotFiles(2, state, model_bytes).ok());
  ASSERT_TRUE(Journal::Create(store.JournalPath(2), 2,
                              FsyncPolicy::kNever)
                  .ok());
  ASSERT_TRUE(store.PublishGeneration(2).ok());
  store.RemoveGeneration(1);
  auto reloaded = store.Load();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().generation, 2u);
  EXPECT_FALSE(fs::exists(store.StatePath(1)));
  EXPECT_FALSE(fs::exists(store.ManifestPath(1)));
}

TEST_F(RecoveryTest, SnapshotStoreMissingSnapshotIsNotFound) {
  SnapshotStore store(Dir("empty"));
  auto loaded = store.Load();
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(RecoveryTest, SnapshotStoreFailsClosedOnCorruption) {
  const ServingState state = MakeState(Fixture());
  auto publish = [&](const std::string& dir) {
    SnapshotStore store(dir);
    EXPECT_TRUE(store.WriteSnapshotFiles(1, state, "model").ok());
    EXPECT_TRUE(
        Journal::Create(store.JournalPath(1), 1, FsyncPolicy::kNever).ok());
    EXPECT_TRUE(store.PublishGeneration(1).ok());
    return store;
  };

  {
    SnapshotStore store = publish(Dir("bad-state"));
    // Flip a byte deep in the state payload: the manifest CRC no longer
    // vouches for the file.
    CorruptByte(store.StatePath(1), fs::file_size(store.StatePath(1)) / 2);
    auto loaded = store.Load();
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("does not match its manifest"),
              std::string::npos)
        << loaded.status().ToString();
  }
  {
    SnapshotStore store = publish(Dir("bad-manifest"));
    CorruptByte(store.ManifestPath(1), 12);
    auto loaded = store.Load();
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("manifest"), std::string::npos)
        << loaded.status().ToString();
  }
  {
    SnapshotStore store = publish(Dir("bad-current"));
    std::ofstream((fs::path(store.dir()) / "CURRENT").string(),
                  std::ios::binary)
        << "MANIFEST-notanumber\n";
    auto loaded = store.Load();
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("CURRENT"), std::string::npos)
        << loaded.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// End-to-end recovery

TEST_F(RecoveryTest, GracefulRestartScreensBitIdentically) {
  auto& fixture = Fixture();
  const size_t boot = 340;
  const size_t split = 370;
  const auto bootstrap = Slice(fixture, 0, boot);
  const auto seed = SeedFromTruth(fixture, boot, 1500);
  const auto stream1 = Slice(fixture, boot, split);
  const auto stream2 = Slice(fixture, split, fixture.corpus.db.size());

  // Control: one uninterrupted process screens both streams.
  std::vector<Decision> control;
  uint64_t control_fingerprint = 0;
  {
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(Dir("control")));
    service.Bootstrap(bootstrap);
    service.SeedLabels(seed);
    auto started = service.Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    for (const auto& report : stream1) ScreenOne(service, report);
    for (const auto& report : stream2) {
      control.push_back(ScreenOne(service, report));
    }
    service.Stop();
    control_fingerprint = service.metrics().state_fingerprint();
  }

  // Run A screens only the first stream, then shuts down cleanly.
  uint64_t generation_a = 0;
  {
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(Dir("wal")));
    service.Bootstrap(bootstrap);
    service.SeedLabels(seed);
    auto started = service.Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    EXPECT_GE(service.snapshot_generation(), 1u);
    for (const auto& report : stream1) ScreenOne(service, report);
    service.Stop();
    generation_a = service.snapshot_generation();
    EXPECT_EQ(service.health(), HealthState::kStopped);
  }

  // Run B restarts over A's journal dir and must continue exactly where
  // A left off: same ids, same matches, same scores, same final state.
  {
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(Dir("wal")));
    service.Bootstrap(bootstrap);
    service.SeedLabels(seed);
    auto started = service.Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    EXPECT_GT(service.snapshot_generation(), generation_a);
    ASSERT_EQ(service.db_size(), split)
        << "recovery lost or duplicated admitted reports";
    // A stopped cleanly, so its final snapshot already folded every
    // batch in: nothing is left in the journal to replay.
    EXPECT_EQ(service.metrics().recovery_replayed_records(), 0u);
    std::vector<Decision> recovered;
    for (const auto& report : stream2) {
      recovered.push_back(ScreenOne(service, report));
    }
    service.Stop();
    ASSERT_EQ(recovered.size(), control.size());
    for (size_t i = 0; i < control.size(); ++i) {
      EXPECT_TRUE(SameDecision(recovered[i], control[i]))
          << "decision diverged at stream index " << i;
    }
    EXPECT_EQ(service.metrics().state_fingerprint(), control_fingerprint)
        << "recovered serving state is not bit-identical to the "
           "uninterrupted run";
  }
}

TEST_F(RecoveryTest, KilledServerRecoversBitIdentically) {
#ifdef ADRDEDUP_TSAN_BUILD
  GTEST_SKIP() << "fork + fresh threads is unsupported under TSan";
#endif
  auto& fixture = Fixture();
  const size_t boot = 340;
  const auto bootstrap = Slice(fixture, 0, boot);
  const auto seed = SeedFromTruth(fixture, boot, 1500);
  const auto stream = Slice(fixture, boot, fixture.corpus.db.size());

  // Control: uninterrupted run over the whole stream.
  std::vector<Decision> control;
  uint64_t control_fingerprint = 0;
  {
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(Dir("control")));
    service.Bootstrap(bootstrap);
    service.SeedLabels(seed);
    auto started = service.Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    for (const auto& report : stream) {
      control.push_back(ScreenOne(service, report));
    }
    service.Stop();
    control_fingerprint = service.metrics().state_fingerprint();
  }

  // Child process: same run over the crash dir, but a fault script
  // _exit(137)s it mid-journal-append — an effective SIGKILL at a
  // deterministic, seeded point. fsync=always means every answered
  // request is durable, so the journal prefix defines exactly which
  // reports survived.
  const std::string crash_dir = Dir("crash");
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    util::FaultScript script;
    script.seed = 9;
    // Journal ops only: Create costs 2 (header write + fsync), each
    // append costs 2 more — op 23 dies inside the ~11th append, well
    // inside the 60-report stream.
    script.crash_after_ops = 23;
    script.class_mask = util::FileClassBit(util::FileClass::kJournal);
    util::FaultFs::Instance().SetScript(script);
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(crash_dir));
    service.Bootstrap(bootstrap);
    service.SeedLabels(seed);
    if (!service.Start().ok()) _exit(42);
    for (const auto& report : stream) {
      if (!service.Screen(report).ok()) _exit(43);
    }
    _exit(44);  // the fault script should have killed us long before
  }
  int wait_status = 0;
  ASSERT_EQ(waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFEXITED(wait_status));
  ASSERT_EQ(WEXITSTATUS(wait_status), 137)
      << "child did not die at the scripted crash point";

  // Restart over the crash dir: recovery replays the journal prefix and
  // the survivor count is read off db_size. Every decision from there on
  // must be bit-identical to the uninterrupted control run.
  {
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(crash_dir));
    service.Bootstrap(bootstrap);
    service.SeedLabels(seed);
    auto started = service.Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    ASSERT_GE(service.db_size(), boot);
    const size_t survived = service.db_size() - boot;
    ASSERT_GT(survived, 0u) << "crash landed before any append";
    ASSERT_LT(survived, stream.size()) << "child never crashed mid-stream";
    EXPECT_GT(service.metrics().recovery_replayed_records(), 0u);
    std::vector<Decision> resumed;
    for (size_t i = survived; i < stream.size(); ++i) {
      resumed.push_back(ScreenOne(service, stream[i]));
    }
    service.Stop();
    for (size_t i = 0; i < resumed.size(); ++i) {
      EXPECT_TRUE(SameDecision(resumed[i], control[survived + i]))
          << "post-recovery decision diverged at stream index "
          << survived + i;
    }
    EXPECT_EQ(service.metrics().state_fingerprint(), control_fingerprint)
        << "state after crash recovery + resumed stream differs from the "
           "uninterrupted run";
  }
}

// ---------------------------------------------------------------------------
// Lifecycle + fail-closed guards

TEST_F(RecoveryTest, HealthReportsRecoveringThenHealthyThenStopped) {
  auto& fixture = Fixture();
  const size_t boot = 120;
  minispark::SparkContext ctx({.num_executors = 2});
  ScreeningService service(&ctx, DurableOptions(Dir("wal")));
  EXPECT_EQ(service.health(), HealthState::kIdle);
  service.Bootstrap(Slice(fixture, 0, boot));
  service.SeedLabels(SeedFromTruth(fixture, boot, 400));
  HealthState observed = HealthState::kIdle;
  service.SetRecoveryObserverForTest(
      [&] { observed = service.health(); });
  auto started = service.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(observed, HealthState::kRecovering);
  EXPECT_EQ(service.health(), HealthState::kHealthy);
  service.Stop();
  EXPECT_EQ(service.health(), HealthState::kStopped);
}

TEST_F(RecoveryTest, MismatchedBootstrapFailsClosed) {
  auto& fixture = Fixture();
  const size_t boot = 120;
  const auto seed = SeedFromTruth(fixture, boot, 400);
  const std::string dir = Dir("wal");
  {
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(dir));
    service.Bootstrap(Slice(fixture, 0, boot));
    service.SeedLabels(seed);
    ASSERT_TRUE(service.Start().ok());
    ScreenOne(service, fixture.corpus.db.Get(
                           static_cast<report::ReportId>(boot)));
    service.Stop();
  }
  {
    // Wrong corpus size: fewer bootstrap reports than the snapshot's.
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(dir));
    service.Bootstrap(Slice(fixture, 0, boot - 5));
    service.SeedLabels(SeedFromTruth(fixture, boot - 5, 400));
    auto started = service.Start();
    ASSERT_FALSE(started.ok());
    EXPECT_NE(started.message().find("bootstrap"), std::string::npos)
        << started.ToString();
    EXPECT_EQ(service.health(), HealthState::kStopped);
    EXPECT_FALSE(service.running());
  }
  {
    // Right size, different reports: the corpus fingerprint catches it.
    minispark::SparkContext ctx({.num_executors = 2});
    ScreeningService service(&ctx, DurableOptions(dir));
    service.Bootstrap(Slice(fixture, 5, boot + 5));
    service.SeedLabels(seed);
    auto started = service.Start();
    ASSERT_FALSE(started.ok());
    EXPECT_NE(started.message().find("fingerprint"), std::string::npos)
        << started.ToString();
    EXPECT_EQ(service.health(), HealthState::kStopped);
  }
}

TEST_F(RecoveryTest, PeriodicSnapshotsAdvanceTheGeneration) {
  auto& fixture = Fixture();
  const size_t boot = 120;
  minispark::SparkContext ctx({.num_executors = 2});
  ScreeningServiceOptions options = DurableOptions(Dir("wal"));
  options.snapshot_every = 4;
  ScreeningService service(&ctx, options);
  service.Bootstrap(Slice(fixture, 0, boot));
  service.SeedLabels(SeedFromTruth(fixture, boot, 400));
  ASSERT_TRUE(service.Start().ok());
  const uint64_t initial = service.snapshot_generation();
  for (size_t i = 0; i < 9; ++i) {
    ScreenOne(service, fixture.corpus.db.Get(
                           static_cast<report::ReportId>(boot + i)));
  }
  service.Stop();
  // 9 admitted reports at snapshot_every=4 → at least two periodic
  // snapshots plus the shutdown snapshot.
  EXPECT_GE(service.snapshot_generation(), initial + 3);
  EXPECT_GE(service.metrics().snapshots_written(), initial + 3);
}

}  // namespace
}  // namespace adrdedup::serve
