#include "serve/service_metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace adrdedup::serve {
namespace {

TEST(LatencyRecorderTest, ExactPercentilesBelowReservoirCapacity) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) {
    recorder.Record(static_cast<double>(i));
  }
  const auto summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 50.5);
  EXPECT_DOUBLE_EQ(summary.max_ms, 100.0);
  // Nearest-rank percentiles over 1..100.
  EXPECT_DOUBLE_EQ(summary.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(summary.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(summary.p99_ms, 99.0);
}

TEST(LatencyRecorderTest, EmptySummaryIsZero) {
  LatencyRecorder recorder;
  const auto summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(summary.max_ms, 0.0);
}

TEST(LatencyRecorderTest, ReservoirKeepsExactAggregatesPastCapacity) {
  LatencyRecorder recorder(/*reservoir_capacity=*/64);
  const size_t n = 10000;
  for (size_t i = 1; i <= n; ++i) {
    recorder.Record(static_cast<double>(i));
  }
  const auto summary = recorder.Summarize();
  EXPECT_EQ(summary.count, n);
  EXPECT_DOUBLE_EQ(summary.max_ms, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(summary.mean_ms, (n + 1) / 2.0);
  // Percentiles are estimates from a uniform sample; a loose sanity band
  // is the contract.
  EXPECT_GT(summary.p95_ms, summary.p50_ms);
  EXPECT_GE(summary.p99_ms, summary.p95_ms);
  EXPECT_GT(summary.p50_ms, 0.0);
  EXPECT_LE(summary.p99_ms, static_cast<double>(n));
}

TEST(LatencyRecorderTest, ResetClears) {
  LatencyRecorder recorder;
  recorder.Record(5.0);
  recorder.Reset();
  EXPECT_EQ(recorder.Summarize().count, 0u);
}

TEST(BatchHistogramTest, BucketBoundsArePowersOfTwo) {
  const auto bounds = BatchHistogramUpperBounds();
  ASSERT_EQ(bounds.size(), kBatchHistogramBuckets);
  EXPECT_EQ(bounds.front(), 1u);
  EXPECT_EQ(bounds[bounds.size() - 2], 128u);
  EXPECT_EQ(bounds.back(), 0u);  // overflow bucket
}

TEST(ServiceMetricsTest, CountersAccumulate) {
  ServiceMetrics metrics;
  metrics.IncReceived();
  metrics.IncReceived();
  metrics.IncCompleted(2);
  metrics.IncRejected();
  metrics.RecordBatch(1);
  metrics.RecordBatch(24);
  metrics.AddDuplicatesFlagged(3);
  metrics.AddPairsScreened(100, 40);
  metrics.IncModelSwaps();
  EXPECT_EQ(metrics.requests_received(), 2u);
  EXPECT_EQ(metrics.requests_completed(), 2u);
  EXPECT_EQ(metrics.requests_rejected(), 1u);
  EXPECT_EQ(metrics.batches_dispatched(), 2u);
  EXPECT_EQ(metrics.max_batch_size(), 24u);
  EXPECT_EQ(metrics.duplicates_flagged(), 3u);
  EXPECT_EQ(metrics.model_swaps(), 1u);
}

TEST(ServiceMetricsTest, ThreadSafeUnderConcurrentUpdates) {
  ServiceMetrics metrics;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics.IncReceived();
        metrics.RecordBatch(static_cast<size_t>(i % 64 + 1));
        metrics.RecordTotalLatency(1.0);
        metrics.IncCompleted();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  constexpr uint64_t kExpected = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(metrics.requests_received(), kExpected);
  EXPECT_EQ(metrics.requests_completed(), kExpected);
  EXPECT_EQ(metrics.TotalLatency().count, kExpected);
  EXPECT_EQ(metrics.max_batch_size(), 64u);
}

TEST(ServiceMetricsTest, ToJsonContainsRegistrySections) {
  ServiceMetrics metrics;
  metrics.IncReceived();
  metrics.RecordBatch(4);
  metrics.RecordTotalLatency(1.25);
  metrics.SetQueueGauges(2, 5, 128);
  metrics.SetStoreGauges(1000, 30, 500, 2);
  const std::string json = metrics.ToJson();
  for (const char* key :
       {"\"requests\"", "\"queue\"", "\"batches\"", "\"size_histogram\"",
        "\"screening\"", "\"model\"", "\"latency\"", "\"queue_wait\"",
        "\"total\"", "\"p99_ms\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_NE(json.find("\"capacity\":128"), std::string::npos) << json;
  EXPECT_NE(json.find("\"db_size\":1000"), std::string::npos) << json;
}

TEST(ServiceMetricsTest, ToJsonSplicesExtraDocument) {
  ServiceMetrics metrics;
  const std::string json = metrics.ToJson("{\"tasks_launched\":9}");
  EXPECT_NE(json.find("\"minispark\":{\"tasks_launched\":9}"),
            std::string::npos)
      << json;
}

TEST(ServiceMetricsTest, BalancedJsonBraces) {
  ServiceMetrics metrics;
  for (bool pretty : {false, true}) {
    const std::string json = metrics.ToJson({}, pretty);
    int depth = 0;
    for (char c : json) {
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
  }
}

}  // namespace
}  // namespace adrdedup::serve
