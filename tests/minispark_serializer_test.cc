// Storage serialization layer: Serializer<T> round trips for every
// record shape the spill/checkpoint path ships, corruption rejection at
// both the payload (serializer bounds checks) and file (CRC frame)
// layers, and the ByteSizeOf accounting the block manager budgets with.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "distance/pair_dataset.h"
#include "distance/pairwise.h"
#include "minispark/byte_size.h"
#include "minispark/storage/serializer.h"
#include "minispark/storage/spill_file.h"

namespace adrdedup::minispark::storage {
namespace {

namespace fs = std::filesystem;

template <typename T>
void ExpectRoundTrip(const T& value) {
  const std::string payload = SerializeToString(value);
  T restored{};
  ASSERT_TRUE(DeserializeFromString(payload, &restored));
  EXPECT_EQ(restored, value);
}

TEST(SerializerTest, TriviallyCopyableScalars) {
  ExpectRoundTrip<int>(-42);
  ExpectRoundTrip<uint64_t>(0xdeadbeefcafe1234ULL);
  ExpectRoundTrip<double>(3.14159265358979);
}

TEST(SerializerTest, StringsIncludingEmbeddedNulAndEmpty) {
  ExpectRoundTrip<std::string>("");
  ExpectRoundTrip<std::string>(std::string("abc\0def", 7));
  ExpectRoundTrip<std::string>(std::string(10000, 'x'));
}

TEST(SerializerTest, PairsAndVectors) {
  ExpectRoundTrip(std::pair<int, double>{7, 2.5});
  ExpectRoundTrip(std::pair<std::string, uint32_t>{"case-123", 9});
  ExpectRoundTrip(std::vector<int>{});
  ExpectRoundTrip(std::vector<double>{1.0, -2.0, 3.5});
  ExpectRoundTrip(std::vector<std::string>{"a", "", "long string here"});
}

TEST(SerializerTest, NestedVectorOfPairs) {
  std::vector<std::pair<std::string, std::vector<int>>> value = {
      {"alpha", {1, 2, 3}},
      {"", {}},
      {"beta", {42}},
  };
  ExpectRoundTrip(value);
}

TEST(SerializerTest, DistanceVectorRecords) {
  distance::DistanceVector v;
  for (size_t i = 0; i < distance::kDistanceDims; ++i) {
    v[i] = 0.1 * static_cast<double>(i + 1);
  }
  const std::string payload = SerializeToString(v);
  EXPECT_EQ(payload.size(), sizeof(distance::DistanceVector));
  distance::DistanceVector restored;
  ASSERT_TRUE(DeserializeFromString(payload, &restored));
  for (size_t i = 0; i < distance::kDistanceDims; ++i) {
    EXPECT_EQ(restored[i], v[i]);
  }
}

TEST(SerializerTest, ReportPairAndLabeledPairRecords) {
  ExpectRoundTrip(distance::ReportPair{3, 17});

  distance::LabeledPair pair;
  pair.pair = {5, 9};
  pair.label = +1;
  pair.vector[0] = 0.25;
  const std::string payload = SerializeToString(pair);
  distance::LabeledPair restored;
  ASSERT_TRUE(DeserializeFromString(payload, &restored));
  EXPECT_EQ(restored.pair, pair.pair);
  EXPECT_EQ(restored.label, pair.label);
  EXPECT_EQ(restored.vector[0], pair.vector[0]);
}

TEST(SerializerTest, PartitionShapedPayload) {
  // The exact record shape PersistNode spills for the distance stage.
  std::vector<std::pair<size_t, distance::DistanceVector>> partition;
  for (size_t i = 0; i < 64; ++i) {
    distance::DistanceVector v;
    v[0] = static_cast<double>(i);
    partition.emplace_back(i, v);
  }
  const std::string payload = SerializeToString(partition);
  std::vector<std::pair<size_t, distance::DistanceVector>> restored;
  ASSERT_TRUE(DeserializeFromString(payload, &restored));
  ASSERT_EQ(restored.size(), partition.size());
  for (size_t i = 0; i < partition.size(); ++i) {
    EXPECT_EQ(restored[i].first, partition[i].first);
    EXPECT_EQ(restored[i].second[0], partition[i].second[0]);
  }
}

TEST(SerializerTest, HasSerializerDetection) {
  struct NotSerializable {
    std::string s;  // non-trivially-copyable, no specialization
  };
  static_assert(HasSerializer<int>::value);
  static_assert(HasSerializer<std::string>::value);
  static_assert(HasSerializer<distance::DistanceVector>::value);
  static_assert(HasSerializer<distance::LabeledPair>::value);
  static_assert(
      HasSerializer<std::vector<std::pair<std::string, int>>>::value);
  static_assert(!HasSerializer<NotSerializable>::value);
  static_assert(!HasSerializer<std::vector<NotSerializable>>::value);
}

TEST(SerializerTest, RejectsTruncatedPayloads) {
  const std::vector<std::string> value = {"hello", "world"};
  const std::string payload = SerializeToString(value);
  // Every proper prefix must fail cleanly, never read out of bounds.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<std::string> restored;
    EXPECT_FALSE(DeserializeFromString(
        std::string_view(payload.data(), cut), &restored))
        << "prefix of " << cut << " bytes deserialized";
  }
}

TEST(SerializerTest, RejectsTrailingGarbage) {
  const std::string payload = SerializeToString(std::vector<int>{1, 2}) + "x";
  std::vector<int> restored;
  EXPECT_FALSE(DeserializeFromString(payload, &restored));
}

TEST(SerializerTest, RejectsCorruptVectorCount) {
  std::string payload = SerializeToString(std::vector<int>{1, 2, 3});
  // Blow up the element count field; the reader must fail on the short
  // payload rather than allocate or scan past the end.
  const uint64_t bogus = ~0ULL;
  payload.replace(0, sizeof(bogus),
                  reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  std::vector<int> restored;
  EXPECT_FALSE(DeserializeFromString(payload, &restored));
}

class SpillFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adrdedup-spill-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const char* name) const { return (dir_ / name).string(); }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  static void WriteAll(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  fs::path dir_;
};

TEST_F(SpillFileTest, RoundTripsPayload) {
  const std::string payload = SerializeToString(std::vector<int>{5, 6, 7});
  ASSERT_TRUE(WriteBlockFile(Path("block.blk"), payload).ok());
  auto read = ReadBlockFile(Path("block.blk"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), payload);
}

TEST_F(SpillFileTest, RoundTripsEmptyPayload) {
  ASSERT_TRUE(WriteBlockFile(Path("empty.blk"), "").ok());
  auto read = ReadBlockFile(Path("empty.blk"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().empty());
}

TEST_F(SpillFileTest, MissingFileIsAnError) {
  EXPECT_FALSE(ReadBlockFile(Path("nope.blk")).ok());
}

TEST_F(SpillFileTest, RejectsBadMagic) {
  ASSERT_TRUE(WriteBlockFile(Path("block.blk"), "payload").ok());
  std::string bytes = ReadAll(Path("block.blk"));
  bytes[0] = 'X';
  WriteAll(Path("block.blk"), bytes);
  EXPECT_FALSE(ReadBlockFile(Path("block.blk")).ok());
}

TEST_F(SpillFileTest, RejectsTruncatedFile) {
  ASSERT_TRUE(
      WriteBlockFile(Path("block.blk"), std::string(256, 'p')).ok());
  const std::string bytes = ReadAll(Path("block.blk"));
  // Cut inside the header and inside the payload.
  for (const size_t keep : {size_t{4}, size_t{12}, bytes.size() - 1}) {
    WriteAll(Path("block.blk"), bytes.substr(0, keep));
    EXPECT_FALSE(ReadBlockFile(Path("block.blk")).ok())
        << "accepted a file truncated to " << keep << " bytes";
  }
}

TEST_F(SpillFileTest, RejectsCorruptPayloadByCrc) {
  ASSERT_TRUE(
      WriteBlockFile(Path("block.blk"), std::string(64, 'q')).ok());
  std::string bytes = ReadAll(Path("block.blk"));
  bytes[bytes.size() - 1] ^= 0x01;  // single bit flip in the payload
  WriteAll(Path("block.blk"), bytes);
  auto read = ReadBlockFile(Path("block.blk"));
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().ToString().find("CRC"), std::string::npos);
}

TEST(ByteSizeTest, ScalarAndStringAccounting) {
  EXPECT_EQ(ByteSizeOf(int{1}), sizeof(int));
  EXPECT_EQ(ByteSizeOf(std::string("abcd")), sizeof(std::string) + 4);
}

TEST(ByteSizeTest, NestedVectorOfPairsAccounting) {
  const std::vector<std::pair<std::string, std::vector<int>>> value = {
      {"ab", {1, 2, 3}},
      {"c", {}},
  };
  const size_t expected =
      sizeof(value) +
      (sizeof(std::string) + 2 + sizeof(std::vector<int>) + 3 * sizeof(int)) +
      (sizeof(std::string) + 1 + sizeof(std::vector<int>));
  EXPECT_EQ(ByteSizeOf(value), expected);
}

TEST(ByteSizeTest, GrowsWithContent) {
  std::vector<std::string> small = {"a"};
  std::vector<std::string> large = {"a", std::string(1000, 'b')};
  EXPECT_GT(ByteSizeOf(large), ByteSizeOf(small) + 1000);
}

}  // namespace
}  // namespace adrdedup::minispark::storage
