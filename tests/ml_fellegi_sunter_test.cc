#include "ml/fellegi_sunter.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "eval/metrics.h"
#include "util/random.h"

namespace adrdedup::ml {
namespace {

using distance::kDistanceDims;
using distance::LabeledPair;

// Positives agree on (almost) everything; negatives on (almost) nothing.
std::vector<LabeledPair> SyntheticPairs(size_t n, double positive_rate,
                                        uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LabeledPair> pairs(n);
  for (auto& pair : pairs) {
    const bool positive = rng.Bernoulli(positive_rate);
    pair.label = positive ? +1 : -1;
    for (size_t d = 0; d < kDistanceDims; ++d) {
      const bool agree = positive ? rng.Bernoulli(0.9) : rng.Bernoulli(0.1);
      pair.vector[d] = agree ? 0.0 : 1.0;
    }
  }
  return pairs;
}

TEST(FellegiSunterTest, EstimatesMatchGeneratingProbabilities) {
  const auto train = SyntheticPairs(20000, 0.3, 1);
  FellegiSunterClassifier classifier(FellegiSunterOptions{});
  classifier.Fit(train);
  for (size_t d = 0; d < kDistanceDims; ++d) {
    EXPECT_NEAR(classifier.m()[d], 0.9, 0.03) << d;
    EXPECT_NEAR(classifier.u()[d], 0.1, 0.03) << d;
  }
}

TEST(FellegiSunterTest, AgreementRaisesScore) {
  const auto train = SyntheticPairs(5000, 0.3, 2);
  FellegiSunterClassifier classifier(FellegiSunterOptions{});
  classifier.Fit(train);
  distance::DistanceVector all_agree;   // zeros
  distance::DistanceVector all_disagree;
  for (size_t d = 0; d < kDistanceDims; ++d) all_disagree[d] = 1.0;
  EXPECT_GT(classifier.Score(all_agree), 0.0);
  EXPECT_LT(classifier.Score(all_disagree), 0.0);
}

TEST(FellegiSunterTest, ScoreIsSumOfFieldWeights) {
  const auto train = SyntheticPairs(5000, 0.3, 3);
  FellegiSunterClassifier classifier(FellegiSunterOptions{});
  classifier.Fit(train);
  distance::DistanceVector v;  // all agree
  double expected = 0.0;
  for (size_t d = 0; d < kDistanceDims; ++d) {
    expected += std::log(classifier.m()[d] / classifier.u()[d]);
  }
  EXPECT_NEAR(classifier.Score(v), expected, 1e-9);
}

TEST(FellegiSunterTest, SeparatesSyntheticPairs) {
  const auto train = SyntheticPairs(10000, 0.1, 4);
  const auto test = SyntheticPairs(2000, 0.1, 5);
  FellegiSunterClassifier classifier(FellegiSunterOptions{});
  classifier.Fit(train);
  std::vector<int8_t> labels;
  for (const auto& pair : test) labels.push_back(pair.label);
  EXPECT_GT(eval::Aupr(classifier.ScoreAll(test), labels), 0.9);
}

TEST(FellegiSunterTest, ReasonableOnGeneratedCorpus) {
  datagen::GeneratorConfig config;
  config.num_reports = 1500;
  config.num_duplicate_pairs = 90;
  config.num_drugs = 250;
  config.num_adrs = 350;
  auto corpus = datagen::GenerateCorpus(config);
  auto features = distance::ExtractAllFeatures(corpus.db);
  distance::DatasetSpec spec;
  spec.num_training_pairs = 20000;
  spec.num_testing_pairs = 4000;
  auto datasets = distance::BuildDatasets(corpus, features, spec);
  FellegiSunterClassifier classifier(FellegiSunterOptions{});
  classifier.Fit(datasets.train.pairs);
  std::vector<int8_t> labels;
  for (const auto& pair : datasets.test.pairs) labels.push_back(pair.label);
  // Useful, though below kNN: it bins fields to agree/disagree and
  // assumes conditional independence.
  EXPECT_GT(eval::Aupr(classifier.ScoreAll(datasets.test.pairs), labels),
            0.15);
}

TEST(FellegiSunterTest, SmoothingKeepsWeightsFinite) {
  // Degenerate training data: positives agree everywhere.
  std::vector<LabeledPair> train(100);
  for (size_t i = 0; i < train.size(); ++i) {
    train[i].label = i < 5 ? +1 : -1;
    for (size_t d = 0; d < kDistanceDims; ++d) {
      train[i].vector[d] = i < 5 ? 0.0 : 1.0;
    }
  }
  FellegiSunterClassifier classifier(FellegiSunterOptions{});
  classifier.Fit(train);
  distance::DistanceVector v;
  EXPECT_TRUE(std::isfinite(classifier.Score(v)));
}

TEST(FellegiSunterTest, MissingClassDies) {
  std::vector<LabeledPair> negatives(10);
  for (auto& pair : negatives) pair.label = -1;
  FellegiSunterClassifier classifier(FellegiSunterOptions{});
  EXPECT_DEATH(classifier.Fit(negatives), "labelled duplicates");
  EXPECT_DEATH((void)classifier.Score({}), "before Fit");
}

}  // namespace
}  // namespace adrdedup::ml
