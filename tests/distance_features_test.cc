#include "distance/report_features.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "report/field.h"

namespace adrdedup::distance {
namespace {

using report::AdrReport;
using report::FieldId;

AdrReport SampleReport() {
  AdrReport report;
  report.Set(FieldId::kCalculatedAge, "46");
  report.Set(FieldId::kSex, "M");
  report.Set(FieldId::kResidentialState, "NSW");
  report.Set(FieldId::kOnsetDate, "30/04/2013 00:00:00");
  report.Set(FieldId::kGenericNameDescription,
             "Influenza Vaccine,Dtpa Vaccine");
  report.Set(FieldId::kMeddraPtCode, "Vomiting,Pyrexia,Cough,Headache");
  report.Set(FieldId::kReportDescription,
             "The subject experienced vomiting and headaches.");
  return report;
}

TEST(ExtractFeaturesTest, BasicExtraction) {
  const auto features = ExtractFeatures(SampleReport());
  EXPECT_EQ(features.age, 46);
  EXPECT_EQ(features.sex, "M");
  EXPECT_EQ(features.state, "NSW");
  EXPECT_EQ(features.onset_date, "30/04/2013 00:00:00");
  EXPECT_EQ(features.drug_tokens,
            (std::vector<std::string>{"dtpa vaccine", "influenza vaccine"}));
  EXPECT_EQ(features.adr_tokens,
            (std::vector<std::string>{"cough", "headache", "pyrexia",
                                      "vomiting"}));
}

TEST(ExtractFeaturesTest, DescriptionGoesThroughNlpPipeline) {
  const auto features = ExtractFeatures(SampleReport());
  // Stop words removed, stems applied, sorted unique.
  EXPECT_EQ(features.description_tokens,
            (std::vector<std::string>{"experienc", "headach", "subject",
                                      "vomit"}));
}

TEST(ExtractFeaturesTest, MissingValuesBecomeEmpty) {
  AdrReport report;
  report.Set(FieldId::kResidentialState, std::string(report::kNotKnown));
  const auto features = ExtractFeatures(report);
  EXPECT_EQ(features.age, std::nullopt);
  EXPECT_TRUE(features.sex.empty());
  EXPECT_TRUE(features.state.empty());
  EXPECT_TRUE(features.drug_tokens.empty());
}

TEST(ExtractFeaturesTest, ListFieldsTrimmedAndDeduplicated) {
  AdrReport report;
  report.Set(FieldId::kMeddraPtCode, "Rash , rash,RASH, Nausea");
  const auto features = ExtractFeatures(report);
  EXPECT_EQ(features.adr_tokens,
            (std::vector<std::string>{"nausea", "rash"}));
}

TEST(ExtractAllFeaturesTest, SequentialMatchesParallel) {
  datagen::GeneratorConfig config;
  config.num_reports = 300;
  config.num_duplicate_pairs = 20;
  config.num_drugs = 60;
  config.num_adrs = 90;
  auto corpus = datagen::GenerateCorpus(config);
  const auto sequential = ExtractAllFeatures(corpus.db);
  util::ThreadPool pool(8);
  const auto parallel = ExtractAllFeatures(corpus.db, {}, &pool);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].age, parallel[i].age);
    EXPECT_EQ(sequential[i].drug_tokens, parallel[i].drug_tokens);
    EXPECT_EQ(sequential[i].description_tokens,
              parallel[i].description_tokens);
  }
}

TEST(ExtractFeaturesTest, ShingleModeTokenizesStringFields) {
  AdrReport report;
  report.Set(FieldId::kGenericNameDescription, "Aspirin");
  report.Set(FieldId::kMeddraPtCode, "Rash");
  FeatureOptions options;
  options.string_field_shingles = 3;
  const auto features = ExtractFeatures(report, options);
  EXPECT_EQ(features.drug_tokens,
            (std::vector<std::string>{"asp", "iri", "pir", "rin", "spi"}));
  EXPECT_EQ(features.adr_tokens,
            (std::vector<std::string>{"ash", "ras"}));
}

TEST(ExtractFeaturesTest, ShinglesToleratesSingleTypos) {
  AdrReport clean;
  clean.Set(FieldId::kGenericNameDescription, "Atorvastatin");
  AdrReport typo;
  typo.Set(FieldId::kGenericNameDescription, "Atorvastetin");
  FeatureOptions whole;
  FeatureOptions shingled;
  shingled.string_field_shingles = 3;
  // Whole-entry comparison: all-or-nothing mismatch (distance 1).
  EXPECT_DOUBLE_EQ(
      SortedJaccardDistance(ExtractFeatures(clean, whole).drug_tokens,
                            ExtractFeatures(typo, whole).drug_tokens),
      1.0);
  // Shingles: most trigrams still match.
  EXPECT_LT(
      SortedJaccardDistance(ExtractFeatures(clean, shingled).drug_tokens,
                            ExtractFeatures(typo, shingled).drug_tokens),
      0.5);
}

TEST(SortedJaccardTest, MatchesUnsortedReference) {
  const std::vector<std::string> a = {"apple", "banana", "cherry"};
  const std::vector<std::string> b = {"banana", "cherry", "date"};
  EXPECT_DOUBLE_EQ(SortedJaccardDistance(a, b), 1.0 - 2.0 / 4.0);
}

TEST(SortedJaccardTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(SortedJaccardDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SortedJaccardDistance({"x"}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SortedJaccardDistance({"x"}, {"x"}), 0.0);
  EXPECT_DOUBLE_EQ(SortedJaccardDistance({"x"}, {"y"}), 1.0);
}

}  // namespace
}  // namespace adrdedup::distance
