// Gate bench for the pairwise distance hot path (ISSUE 5 tentpole): the
// interned-token engine (dictionary-encoded features, integer Jaccard,
// signature prefilter, galloping merge — distance/interned.h) against
// the string-token implementation it replaces.
//
// Gates:
//   * every DistanceVector bit-identical to the string-token path (hard
//     fail — deterministic at any scale),
//   * >= 3x single-thread speedup on the distance stage (PASS/FAIL
//     print; fails the process only under ADRDEDUP_BENCH_STRICT=1, so
//     timing noise on tiny smoke runs cannot flake CI),
//   * serve-path interning parity (hard fail): a pipeline that interns
//     fresh batches against its live dictionary produces encodings —
//     and therefore screening decisions, which are functions of the
//     distance vectors alone — identical to a full re-encode of the
//     grown corpus and to the string path.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/dedup_pipeline.h"
#include "distance/interned.h"
#include "distance/pairwise.h"
#include "minispark/context.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace adrdedup::bench {
namespace {

using distance::DistanceVector;
using distance::InternedFeatures;
using distance::ReportFeatures;
using distance::ReportPair;
using distance::TokenDictionary;

std::vector<ReportPair> SamplePairs(size_t num_reports, size_t num_pairs,
                                    uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ReportPair> pairs;
  pairs.reserve(num_pairs);
  while (pairs.size() < num_pairs) {
    const auto a = static_cast<report::ReportId>(rng.Uniform(num_reports));
    const auto b = static_cast<report::ReportId>(rng.Uniform(num_reports));
    if (a == b) continue;
    pairs.push_back({std::min(a, b), std::max(a, b)});
  }
  return pairs;
}

int Run() {
  PrintBanner("distance-hotpath",
              "ISSUE 5 gate: interned-token distance engine vs string path");
  const bool strict = [] {
    const char* env = std::getenv("ADRDEDUP_BENCH_STRICT");
    return env != nullptr && std::string(env) == "1";
  }();

  const auto& workload = SharedWorkload();
  const auto& features = workload.features;

  // Encode once, as the pipeline does at ingest; report the cost so it
  // is visible that interning is amortized over every later pair.
  util::Stopwatch encode_watch;
  TokenDictionary dict = TokenDictionary::Build(features);
  const auto interned = distance::InternAllFeatures(features, &dict);
  const double encode_seconds = encode_watch.ElapsedSeconds();
  std::cout << "reports: " << features.size()
            << ", dictionary tokens: " << dict.size()
            << ", encode time: " << encode_seconds << "s\n";

  const size_t num_pairs = Scaled(2000000, 20000);
  const auto pairs = SamplePairs(features.size(), num_pairs, 29);
  std::cout << "distance-stage pairs: " << pairs.size() << "\n";

  bool failed = false;

  // --- Gate 1: single-thread distance stage, string vs interned. ---
  // One warmup pass each, then the timed pass over the same pairs.
  (void)distance::ComputePairDistances(features, pairs);
  util::Stopwatch string_watch;
  const auto string_vectors = distance::ComputePairDistances(features, pairs);
  const double string_seconds = string_watch.ElapsedSeconds();

  (void)distance::ComputePairDistances(interned, pairs);
  util::Stopwatch interned_watch;
  const auto interned_vectors =
      distance::ComputePairDistances(interned, pairs);
  const double interned_seconds = interned_watch.ElapsedSeconds();

  const double string_pps =
      static_cast<double>(pairs.size()) / string_seconds;
  const double interned_pps =
      static_cast<double>(pairs.size()) / interned_seconds;
  const double speedup = interned_pps / string_pps;
  eval::TablePrinter throughput(&std::cout, {"path", "pairs/sec", "speedup"});
  throughput.set_export_name("distance_hotpath_throughput");
  throughput.AddRow({"string tokens (pre-PR)",
                     eval::TablePrinter::Num(string_pps, 0), "1.00"});
  throughput.AddRow({"interned ids + signatures",
                     eval::TablePrinter::Num(interned_pps, 0),
                     eval::TablePrinter::Num(speedup, 2)});
  throughput.Print();
  const bool throughput_ok = speedup >= 3.0;
  std::cout << "GATE distance speedup >= 3.0x: "
            << (throughput_ok ? "PASS" : "FAIL") << " (" << speedup << "x)"
            << std::endl;
  if (!throughput_ok && strict) failed = true;

  // --- Gate 2: bit-identical DistanceVectors. ---
  bool identical = string_vectors.size() == interned_vectors.size();
  for (size_t i = 0; identical && i < string_vectors.size(); ++i) {
    identical = string_vectors[i] == interned_vectors[i];
  }
  std::cout << "GATE all " << pairs.size()
            << " DistanceVectors bit-identical: "
            << (identical ? "PASS" : "FAIL") << std::endl;
  if (!identical) failed = true;

  // --- Gate 3: serve-path interning parity. ---
  // A pipeline bootstrapped on a base corpus interns each new batch
  // against its live dictionary (ids appended, never re-encoded). Its
  // encodings must match a full re-encode of the grown corpus and the
  // string path — over the exact pair universe the final batch screens
  // (Eq. 3), which pins the screening decisions themselves.
  const size_t base = features.size() * 9 / 10;
  std::vector<report::AdrReport> base_reports;
  std::vector<report::AdrReport> batch_reports;
  for (size_t i = 0; i < workload.corpus.db.size(); ++i) {
    const auto& report = workload.corpus.db.Get(
        static_cast<report::ReportId>(i));
    (i < base ? base_reports : batch_reports).push_back(report);
  }
  minispark::SparkContext ctx({.num_executors = 2});
  core::DedupPipeline pipeline(&ctx, core::DedupPipelineOptions{});
  pipeline.BootstrapDatabase(base_reports);
  // Minimal labelled seed so the classifier can fit.
  std::vector<distance::LabeledPair> seed_labels(2);
  seed_labels[0].pair = {0, 1};
  seed_labels[0].label = +1;
  seed_labels[0].vector = distance::ComputeDistanceVector(
      pipeline.interned_features()[0], pipeline.interned_features()[1]);
  seed_labels[1].pair = {0, 2};
  seed_labels[1].label = -1;
  seed_labels[1].vector = distance::ComputeDistanceVector(
      pipeline.interned_features()[0], pipeline.interned_features()[2]);
  pipeline.SeedLabels(seed_labels);
  const size_t dict_before = pipeline.token_dictionary().size();
  (void)pipeline.ProcessNewReports(batch_reports);
  std::cout << "serve path: dictionary " << dict_before << " -> "
            << pipeline.token_dictionary().size() << " tokens after batch of "
            << batch_reports.size() << "\n";

  std::vector<report::ReportId> existing;
  std::vector<report::ReportId> fresh;
  for (size_t i = 0; i < pipeline.db().size(); ++i) {
    (i < base ? existing : fresh).push_back(
        static_cast<report::ReportId>(i));
  }
  const auto serve_pairs = distance::PairsForNewReports(existing, fresh);

  TokenDictionary fresh_dict = TokenDictionary::Build(pipeline.features());
  const auto reencoded =
      distance::InternAllFeatures(pipeline.features(), &fresh_dict);
  const auto live_vectors =
      distance::ComputePairDistances(pipeline.interned_features(),
                                     serve_pairs);
  const auto reencoded_vectors =
      distance::ComputePairDistances(reencoded, serve_pairs);
  const auto reference_vectors =
      distance::ComputePairDistances(pipeline.features(), serve_pairs);
  bool serve_ok = true;
  for (size_t i = 0; i < serve_pairs.size(); ++i) {
    if (live_vectors[i] != reencoded_vectors[i] ||
        live_vectors[i] != reference_vectors[i]) {
      serve_ok = false;
      break;
    }
  }
  std::cout << "GATE serve-path live dictionary == full re-encode == string"
            << " path (" << serve_pairs.size()
            << " screening pairs): " << (serve_ok ? "PASS" : "FAIL")
            << std::endl;
  if (!serve_ok) failed = true;

  return failed ? 1 : 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Run(); }
