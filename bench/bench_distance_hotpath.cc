// Gate bench for the pairwise distance hot path (ISSUE 5 tentpole): the
// interned-token engine (dictionary-encoded features, integer Jaccard,
// signature prefilter, galloping merge — distance/interned.h) against
// the string-token implementation it replaces.
//
// Gates:
//   * every DistanceVector bit-identical to the string-token path (hard
//     fail — deterministic at any scale),
//   * >= 3x single-thread speedup on the distance stage (PASS/FAIL
//     print; fails the process only under ADRDEDUP_BENCH_STRICT=1, so
//     timing noise on tiny smoke runs cannot flake CI),
//   * serve-path interning parity (hard fail): a pipeline that interns
//     fresh batches against its live dictionary produces encodings —
//     and therefore screening decisions, which are functions of the
//     distance vectors alone — identical to a full re-encode of the
//     grown corpus and to the string path.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/dedup_pipeline.h"
#include "distance/interned.h"
#include "distance/pairwise.h"
#include "distance/simd/dispatch.h"
#include "distance/simd/intersect_avx2.h"
#include "minispark/context.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace adrdedup::bench {
namespace {

using distance::DistanceVector;
using distance::InternedFeatures;
using distance::ReportFeatures;
using distance::ReportPair;
using distance::TokenDictionary;

std::vector<ReportPair> SamplePairs(size_t num_reports, size_t num_pairs,
                                    uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ReportPair> pairs;
  pairs.reserve(num_pairs);
  while (pairs.size() < num_pairs) {
    const auto a = static_cast<report::ReportId>(rng.Uniform(num_reports));
    const auto b = static_cast<report::ReportId>(rng.Uniform(num_reports));
    if (a == b) continue;
    pairs.push_back({std::min(a, b), std::max(a, b)});
  }
  return pairs;
}

int Run() {
  PrintBanner("distance-hotpath",
              "ISSUE 5 gate: interned-token distance engine vs string path");
  const bool strict = [] {
    const char* env = std::getenv("ADRDEDUP_BENCH_STRICT");
    return env != nullptr && std::string(env) == "1";
  }();

  const auto& workload = SharedWorkload();
  const auto& features = workload.features;

  // Encode once, as the pipeline does at ingest; report the cost so it
  // is visible that interning is amortized over every later pair.
  util::Stopwatch encode_watch;
  TokenDictionary dict = TokenDictionary::Build(features);
  const auto interned = distance::InternAllFeatures(features, &dict);
  const double encode_seconds = encode_watch.ElapsedSeconds();
  std::cout << "reports: " << features.size()
            << ", dictionary tokens: " << dict.size()
            << ", encode time: " << encode_seconds << "s\n";

  const size_t num_pairs = Scaled(2000000, 20000);
  const auto pairs = SamplePairs(features.size(), num_pairs, 29);
  std::cout << "distance-stage pairs: " << pairs.size() << "\n";

  bool failed = false;

  // --- Gate 1: single-thread distance stage, string vs interned. ---
  // One warmup pass each, then the timed pass over the same pairs.
  (void)distance::ComputePairDistances(features, pairs);
  util::Stopwatch string_watch;
  const auto string_vectors = distance::ComputePairDistances(features, pairs);
  const double string_seconds = string_watch.ElapsedSeconds();

  (void)distance::ComputePairDistances(interned, pairs);
  util::Stopwatch interned_watch;
  const auto interned_vectors =
      distance::ComputePairDistances(interned, pairs);
  const double interned_seconds = interned_watch.ElapsedSeconds();

  const double string_pps =
      static_cast<double>(pairs.size()) / string_seconds;
  const double interned_pps =
      static_cast<double>(pairs.size()) / interned_seconds;
  const double speedup = interned_pps / string_pps;
  eval::TablePrinter throughput(&std::cout, {"path", "pairs/sec", "speedup"});
  throughput.set_export_name("distance_hotpath_throughput");
  throughput.AddRow({"string tokens (pre-PR)",
                     eval::TablePrinter::Num(string_pps, 0), "1.00"});
  throughput.AddRow({"interned ids + signatures",
                     eval::TablePrinter::Num(interned_pps, 0),
                     eval::TablePrinter::Num(speedup, 2)});
  throughput.Print();
  const bool throughput_ok = speedup >= 3.0;
  std::cout << "GATE distance speedup >= 3.0x: "
            << (throughput_ok ? "PASS" : "FAIL") << " (" << speedup << "x)"
            << std::endl;
  if (!throughput_ok && strict) failed = true;

  // --- Gate 2: bit-identical DistanceVectors. ---
  bool identical = string_vectors.size() == interned_vectors.size();
  for (size_t i = 0; identical && i < string_vectors.size(); ++i) {
    identical = string_vectors[i] == interned_vectors[i];
  }
  std::cout << "GATE all " << pairs.size()
            << " DistanceVectors bit-identical: "
            << (identical ? "PASS" : "FAIL") << std::endl;
  if (!identical) failed = true;

  // --- Gate 3: serve-path interning parity. ---
  // A pipeline bootstrapped on a base corpus interns each new batch
  // against its live dictionary (ids appended, never re-encoded). Its
  // encodings must match a full re-encode of the grown corpus and the
  // string path — over the exact pair universe the final batch screens
  // (Eq. 3), which pins the screening decisions themselves.
  const size_t base = features.size() * 9 / 10;
  std::vector<report::AdrReport> base_reports;
  std::vector<report::AdrReport> batch_reports;
  for (size_t i = 0; i < workload.corpus.db.size(); ++i) {
    const auto& report = workload.corpus.db.Get(
        static_cast<report::ReportId>(i));
    (i < base ? base_reports : batch_reports).push_back(report);
  }
  minispark::SparkContext ctx({.num_executors = 2});
  core::DedupPipeline pipeline(&ctx, core::DedupPipelineOptions{});
  pipeline.BootstrapDatabase(base_reports);
  // Minimal labelled seed so the classifier can fit.
  std::vector<distance::LabeledPair> seed_labels(2);
  seed_labels[0].pair = {0, 1};
  seed_labels[0].label = +1;
  seed_labels[0].vector = distance::ComputeDistanceVector(
      pipeline.interned_features()[0], pipeline.interned_features()[1]);
  seed_labels[1].pair = {0, 2};
  seed_labels[1].label = -1;
  seed_labels[1].vector = distance::ComputeDistanceVector(
      pipeline.interned_features()[0], pipeline.interned_features()[2]);
  pipeline.SeedLabels(seed_labels);
  const size_t dict_before = pipeline.token_dictionary().size();
  (void)pipeline.ProcessNewReports(batch_reports);
  std::cout << "serve path: dictionary " << dict_before << " -> "
            << pipeline.token_dictionary().size() << " tokens after batch of "
            << batch_reports.size() << "\n";

  std::vector<report::ReportId> existing;
  std::vector<report::ReportId> fresh;
  for (size_t i = 0; i < pipeline.db().size(); ++i) {
    (i < base ? existing : fresh).push_back(
        static_cast<report::ReportId>(i));
  }
  const auto serve_pairs = distance::PairsForNewReports(existing, fresh);

  TokenDictionary fresh_dict = TokenDictionary::Build(pipeline.features());
  const auto reencoded =
      distance::InternAllFeatures(pipeline.features(), &fresh_dict);
  const auto live_vectors =
      distance::ComputePairDistances(pipeline.interned_features(),
                                     serve_pairs);
  const auto reencoded_vectors =
      distance::ComputePairDistances(reencoded, serve_pairs);
  const auto reference_vectors =
      distance::ComputePairDistances(pipeline.features(), serve_pairs);
  bool serve_ok = true;
  for (size_t i = 0; i < serve_pairs.size(); ++i) {
    if (live_vectors[i] != reencoded_vectors[i] ||
        live_vectors[i] != reference_vectors[i]) {
      serve_ok = false;
      break;
    }
  }
  std::cout << "GATE serve-path live dictionary == full re-encode == string"
            << " path (" << serve_pairs.size()
            << " screening pairs): " << (serve_ok ? "PASS" : "FAIL")
            << std::endl;
  if (!serve_ok) failed = true;

  // --- Gate 4: SIMD dispatch parity (hard). ---
  // The whole distance stage re-run under forced-scalar and forced-AVX2
  // dispatch must produce bit-identical DistanceVectors — the kernels
  // are drop-in replacements, so any detection decision downstream is
  // identical by construction. Deterministic, so a failure is a real
  // kernel bug, never noise.
  namespace simd = distance::simd;
  {
    std::vector<DistanceVector> forced_scalar;
    {
      simd::ScopedSimdOverride level(simd::Level::kScalar);
      forced_scalar = distance::ComputePairDistances(interned, pairs);
    }
    bool parity = true;
    if (simd::CpuHasAvx2Fma()) {
      std::vector<DistanceVector> forced_simd;
      {
        simd::ScopedSimdOverride level(simd::Level::kAvx2Fma);
        forced_simd = distance::ComputePairDistances(interned, pairs);
      }
      parity = forced_scalar.size() == forced_simd.size();
      for (size_t i = 0; parity && i < forced_scalar.size(); ++i) {
        parity = forced_scalar[i] == forced_simd[i];
      }
      std::cout << "GATE scalar vs avx2+fma dispatch bit-identical over "
                << pairs.size()
                << " pairs: " << (parity ? "PASS" : "FAIL") << std::endl;
    } else {
      std::cout << "GATE scalar vs avx2+fma dispatch: SKIP (CPU lacks "
                   "AVX2/FMA; scalar oracle is the only path)"
                << std::endl;
    }
    if (!parity) failed = true;
  }

  // --- Gate 5: AVX2 intersection kernel >= 1.5x scalar (strict-only
  // timing; the embedded checksum comparison stays a hard gate). ---
  if (simd::CpuHasAvx2Fma()) {
    util::Rng rng(71);
    constexpr size_t kPool = 256;
    std::vector<std::vector<uint32_t>> pool(kPool);
    for (auto& ids : pool) {
      // Description-sized sets, below the galloping skew, dense enough
      // that blocks overlap — the regime the block kernel exists for.
      const size_t size = 32 + rng.Uniform(96);
      ids.reserve(size);
      for (size_t i = 0; i < size; ++i) {
        ids.push_back(static_cast<uint32_t>(rng.Uniform(size * 4)));
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }
    const size_t iters = Scaled(2000000, 40000);
    const auto run = [&](auto&& kernel) {
      size_t checksum = 0;
      util::Stopwatch watch;
      for (size_t it = 0; it < iters; ++it) {
        const auto& a = pool[it % kPool];
        const auto& b = pool[(it * 7 + 13) % kPool];
        checksum += kernel(a.data(), a.size(), b.data(), b.size());
      }
      return std::make_pair(watch.ElapsedSeconds(), checksum);
    };
    (void)run(distance::ScalarSortedIdIntersectionSize);  // warmup
    const auto [scalar_seconds, scalar_sum] =
        run(distance::ScalarSortedIdIntersectionSize);
    (void)run(simd::Avx2SortedIntersectionSize);  // warmup
    const auto [simd_seconds, simd_sum] =
        run(simd::Avx2SortedIntersectionSize);
    if (scalar_sum != simd_sum) {
      std::cout << "GATE intersection checksum parity: FAIL (scalar "
                << scalar_sum << " vs avx2 " << simd_sum << ")" << std::endl;
      failed = true;
    }
    const double kernel_speedup = scalar_seconds / simd_seconds;
    eval::TablePrinter kernels(&std::cout,
                               {"kernel", "intersections/sec", "speedup"});
    kernels.set_export_name("distance_hotpath_intersect_kernels");
    kernels.AddRow({"scalar branchless",
                    eval::TablePrinter::Num(
                        static_cast<double>(iters) / scalar_seconds, 0),
                    "1.00"});
    kernels.AddRow({"avx2 8x8 shuffle",
                    eval::TablePrinter::Num(
                        static_cast<double>(iters) / simd_seconds, 0),
                    eval::TablePrinter::Num(kernel_speedup, 2)});
    kernels.Print();
    const bool kernel_ok = kernel_speedup >= 1.5;
    std::cout << "GATE avx2 intersection >= 1.5x scalar: "
              << (kernel_ok ? "PASS" : "FAIL") << " (" << kernel_speedup
              << "x)" << std::endl;
    if (!kernel_ok && strict) failed = true;
  } else {
    std::cout << "GATE avx2 intersection >= 1.5x scalar: SKIP (CPU lacks "
                 "AVX2/FMA)"
              << std::endl;
  }

  return failed ? 1 : 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Run(); }
