// Figure 6 — effect of k: AUPR (6a) and execution time (6b) for
// k in {5, 9, 13, 17, 21}; 3M training pairs / 10k testing pairs
// (scaled). The paper finds AUPR nearly flat in k (inverse-distance
// weighting discounts far neighbours) while execution time grows ~30%
// from k=5 to k=21 (larger k selects more partitions in stage 2).
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "eval/metrics.h"

namespace adrdedup::bench {
namespace {

int Main() {
  PrintBanner("bench_fig6_effect_of_k", "Figure 6 (effect of k)");
  const size_t train = Scaled(3000000, 30000);
  const size_t test = Scaled(10000, 1000);
  std::cout << "training pairs: " << train << ", testing pairs: " << test
            << "\n\n";
  const auto data = MakeDatasets(train, test);
  const auto labels = LabelsOf(data.test);
  minispark::SparkContext ctx({.num_executors = 4});

  eval::TablePrinter table(&std::cout,
                           {"k", "AUPR", "execution time (s)",
                            "additional clusters", "early exits"});
  double time_at_5 = 0.0;
  double time_at_21 = 0.0;
  for (size_t k : {5u, 9u, 13u, 17u, 21u}) {
    core::FastKnnOptions options;
    options.k = k;
    options.num_clusters = 32;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx.pool());

    util::Stopwatch watch;
    const auto scores = classifier.ScoreAllSpark(&ctx, data.test.pairs);
    const double seconds = watch.ElapsedSeconds();
    if (k == 5) time_at_5 = seconds;
    if (k == 21) time_at_21 = seconds;

    const auto stats = classifier.stats().Snapshot();
    table.AddRow({std::to_string(k),
                  eval::TablePrinter::Num(eval::Aupr(scores, labels), 3),
                  eval::TablePrinter::Num(seconds, 3),
                  std::to_string(stats.additional_clusters_checked),
                  std::to_string(stats.early_exits)});
  }
  table.Print();
  if (time_at_5 > 0.0) {
    std::cout << "execution time growth k=5 -> k=21: "
              << eval::TablePrinter::Num(
                     (time_at_21 - time_at_5) / time_at_5 * 100.0, 1)
              << "% (paper reports +31%)\n";
  }
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
