// Figure 5 — precision/recall of Fast kNN vs the SVM baselines.
//   5(a): PR curve, 5M training pairs (scaled), 20k testing pairs.
//   5(b): PR curve, 1M training pairs (scaled), 20k testing pairs.
//   5(c): AUPR vs training size (1M-5M scaled) for kNN / SVM /
//         SVM-clustering (8 clusters).
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "eval/metrics.h"
#include "ml/svm.h"
#include "ml/svm_clustering.h"

namespace adrdedup::bench {
namespace {

std::vector<double> KnnScores(const distance::LabeledPairDatasets& data,
                              minispark::SparkContext* ctx) {
  core::FastKnnOptions options;
  options.k = 9;
  options.num_clusters = 32;
  core::FastKnnClassifier classifier(options);
  classifier.Fit(data.train.pairs, &ctx->pool());
  return classifier.ScoreAllSpark(ctx, data.test.pairs);
}

std::vector<double> SvmScores(const distance::LabeledPairDatasets& data) {
  ml::SvmClassifier svm(ml::SvmOptions{});
  svm.Fit(data.train.pairs);
  return svm.ScoreAll(data.test.pairs);
}

std::vector<double> SvmClusteringScores(
    const distance::LabeledPairDatasets& data) {
  ml::SvmClusteringOptions options;
  options.num_clusters = 8;  // the paper's Fig. 5(c) setting
  options.sample_size = data.train.pairs.size() / 10;
  ml::SvmClusteringClassifier svm(options);
  svm.Fit(data.train.pairs);
  return svm.ScoreAll(data.test.pairs);
}

// Prints a PR curve down-sampled to ~12 recall levels.
void PrintCurve(const std::string& name, const std::vector<double>& scores,
                const std::vector<int8_t>& labels) {
  const auto curve = eval::ComputePrCurve(scores, labels);
  eval::TablePrinter table(&std::cout, {"recall", name + " precision"});
  double next_recall = 0.0;
  for (const auto& point : curve.points) {
    if (point.recall + 1e-12 < next_recall) continue;
    table.AddRow({eval::TablePrinter::Num(point.recall, 2),
                  eval::TablePrinter::Num(point.precision, 3)});
    next_recall = point.recall + 0.085;
  }
  table.Print();
  std::cout << name << " AUPR = "
            << eval::TablePrinter::Num(curve.aupr, 3) << "\n";
}

int Main() {
  PrintBanner("bench_fig5_aupr",
              "Figure 5 (kNN vs SVM precision-recall / AUPR)");
  minispark::SparkContext ctx({.num_executors = 4});

  // 5(a) and 5(b): PR curves at two training sizes, 20k test pairs.
  for (const auto& [sub, paper_train] :
       {std::pair{"Fig 5(a): 5M training pairs", 5000000},
        std::pair{"Fig 5(b): 1M training pairs", 1000000}}) {
    const size_t train = Scaled(static_cast<size_t>(paper_train), 20000);
    const size_t test = Scaled(20000, 2000);
    std::cout << "\n## " << sub << " -> scaled " << train << " train / "
              << test << " test\n";
    const auto data = MakeDatasets(train, test);
    const auto labels = LabelsOf(data.test);
    PrintCurve("kNN", KnnScores(data, &ctx), labels);
    PrintCurve("SVM", SvmScores(data), labels);
  }

  // 5(c): AUPR vs training size for the three classifiers.
  std::cout << "\n## Fig 5(c): AUPR vs training set size\n";
  eval::TablePrinter table(
      &std::cout, {"paper size (M pairs)", "scaled size", "kNN", "SVM",
                   "SVM clustering"});
  double knn_sum = 0.0;
  double svm_sum = 0.0;
  int rows = 0;
  for (int millions = 1; millions <= 5; ++millions) {
    const size_t train =
        Scaled(static_cast<size_t>(millions) * 1000000, 20000);
    const size_t test = Scaled(20000, 2000);
    const auto data = MakeDatasets(train, test, 7 + millions);
    const auto labels = LabelsOf(data.test);
    const double knn = eval::Aupr(KnnScores(data, &ctx), labels);
    const double svm = eval::Aupr(SvmScores(data), labels);
    const double svm_clustering =
        eval::Aupr(SvmClusteringScores(data), labels);
    table.AddRow({std::to_string(millions), std::to_string(train),
                  eval::TablePrinter::Num(knn, 3),
                  eval::TablePrinter::Num(svm, 3),
                  eval::TablePrinter::Num(svm_clustering, 3)});
    knn_sum += knn;
    svm_sum += svm;
    ++rows;
  }
  table.Print();
  std::cout << "average kNN improvement over SVM: "
            << eval::TablePrinter::Num(
                   (knn_sum - svm_sum) / svm_sum * 100.0, 1)
            << "% (paper reports +19.1%)\n";
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
