// Micro-benchmarks (google-benchmark) for the primitive kernels behind
// the system: string similarity metrics, the text pipeline, per-pair
// distance vectors, kNN search, k-means iterations, and minispark ops.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "blocking/postings.h"
#include "core/fast_knn.h"
#include "distance/interned.h"
#include "distance/pairwise.h"
#include "distance/simd/bitset_avx2.h"
#include "distance/simd/dispatch.h"
#include "distance/simd/intersect_avx2.h"
#include "minispark/pair_rdd.h"
#include "minispark/rdd.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "text/porter_stemmer.h"
#include "text/similarity.h"
#include "text/text_pipeline.h"
#include "text/tokenizer.h"
#include "util/random.h"

namespace adrdedup::bench {
namespace {

const char* const kNarrative =
    "Reference number AU-104523 is a report received from the sponsor "
    "pertaining to a 54 year-old male patient who experienced "
    "rhabdomyolysis and myalgia while on atorvastatin for the treatment "
    "of unknown indication. The reported outcome was Recovered.";

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "atorvastatin calcium";
  const std::string b = "atorvastatine kalzium";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaccardTokens(benchmark::State& state) {
  const auto a = text::Tokenize(kNarrative);
  auto b = a;
  b.resize(b.size() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaccardSimilarity(a, b));
  }
}
BENCHMARK(BM_JaccardTokens);

// The interned counterpart of BM_JaccardTokens: same token sets, but
// dictionary-encoded into sorted uint32 ids with 64-bit signatures.
void BM_JaccardInterned(benchmark::State& state) {
  auto a_tokens = text::Tokenize(kNarrative);
  std::sort(a_tokens.begin(), a_tokens.end());
  a_tokens.erase(std::unique(a_tokens.begin(), a_tokens.end()),
                 a_tokens.end());
  auto b_tokens = a_tokens;
  b_tokens.resize(b_tokens.size() / 2);
  distance::TokenDictionary dict;
  const auto a = distance::InternTokenSet(a_tokens, &dict);
  const auto b = distance::InternTokenSet(b_tokens, &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::InternedJaccardDistance(a, b));
  }
}
BENCHMARK(BM_JaccardInterned);

// Disjoint sets whose signatures do not overlap: measures the cost of a
// pair the prefilter short-circuits (no merge runs at all).
void BM_JaccardSignaturePrefilter(benchmark::State& state) {
  distance::TokenDictionary dict;
  std::vector<std::string> a_tokens;
  std::vector<std::string> b_tokens;
  for (int i = 0; i < 24; ++i) a_tokens.push_back("left" + std::to_string(i));
  for (int i = 0; i < 24; ++i) b_tokens.push_back("right" + std::to_string(i));
  auto a = distance::InternTokenSet(a_tokens, &dict);
  auto b = distance::InternTokenSet(b_tokens, &dict);
  // Keep only ids whose signature bits are disjoint from the other side,
  // so the benchmark measures the (signature & signature) == 0 exit.
  std::erase_if(b.ids, [&](uint32_t id) {
    return (distance::TokenSignatureBit(id) & a.signature) != 0;
  });
  b.signature = 0;
  for (uint32_t id : b.ids) b.signature |= distance::TokenSignatureBit(id);
  if ((a.signature & b.signature) != 0) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::InternedJaccardDistance(a, b));
  }
}
BENCHMARK(BM_JaccardSignaturePrefilter);

// Skewed sizes where the galloping merge beats the linear sweep: one
// 8-element set intersected with a 4096-element set.
void BM_JaccardGallop(benchmark::State& state) {
  distance::TokenDictionary dict;
  std::vector<std::string> large_tokens;
  for (int i = 0; i < 4096; ++i) {
    large_tokens.push_back("tok" + std::to_string(i));
  }
  std::vector<std::string> small_tokens;
  for (int i = 0; i < 8; ++i) {
    small_tokens.push_back("tok" + std::to_string(i * 512));
  }
  const auto large = distance::InternTokenSet(large_tokens, &dict);
  const auto small = distance::InternTokenSet(small_tokens, &dict);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::InternedJaccardDistance(small, large));
  }
}
BENCHMARK(BM_JaccardGallop);

void BM_PorterStem(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::PorterStem("hospitalisation"));
  }
}
BENCHMARK(BM_PorterStem);

void BM_TextPipeline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::ProcessFreeText(kNarrative));
  }
}
BENCHMARK(BM_TextPipeline);

void BM_DistanceVector(benchmark::State& state) {
  const auto& workload = SharedWorkload();
  const auto& f = workload.features;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::ComputeDistanceVector(f[i % f.size()],
                                        f[(i * 7 + 13) % f.size()]));
    ++i;
  }
}
BENCHMARK(BM_DistanceVector);

void BM_EuclideanDistance(benchmark::State& state) {
  distance::DistanceVector a;
  distance::DistanceVector b;
  for (size_t d = 0; d < distance::kDistanceDims; ++d) {
    a[d] = 0.25 * static_cast<double>(d);
    b[d] = 1.0 - a[d];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::EuclideanDistance(a, b));
  }
}
BENCHMARK(BM_EuclideanDistance);

std::vector<distance::LabeledPair> MicroTrainingSet(size_t n) {
  util::Rng rng(11);
  std::vector<distance::LabeledPair> pairs(n);
  for (auto& pair : pairs) {
    for (size_t d = 0; d < distance::kDistanceDims; ++d) {
      pair.vector[d] = rng.UniformDouble();
    }
    pair.label = rng.Bernoulli(0.01) ? +1 : -1;
  }
  return pairs;
}

void BM_BruteForceKnn(benchmark::State& state) {
  const auto train = MicroTrainingSet(static_cast<size_t>(state.range(0)));
  distance::DistanceVector query;
  query[0] = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::BruteForceKnn(query, train, 9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BruteForceKnn)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FastKnnQuery(benchmark::State& state) {
  static const auto& train = *new std::vector<distance::LabeledPair>(
      MicroTrainingSet(100000));
  static const auto& classifier = *[] {
    auto* c = new core::FastKnnClassifier([] {
      core::FastKnnOptions options;
      options.k = 9;
      options.num_clusters = 48;
      return options;
    }());
    c->Fit(train);
    return c;
  }();
  distance::DistanceVector query;
  query[0] = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Score(query));
  }
}
BENCHMARK(BM_FastKnnQuery);

// Sorted-id intersection kernels head to head: the always-compiled
// scalar oracle vs the AVX2 8x8 shuffle block kernel, on
// description-sized sets with moderate overlap.
std::vector<std::vector<uint32_t>> MicroIdPool(size_t count) {
  util::Rng rng(17);
  std::vector<std::vector<uint32_t>> pool(count);
  for (auto& ids : pool) {
    const size_t size = 32 + rng.Uniform(96);
    for (size_t i = 0; i < size; ++i) {
      ids.push_back(static_cast<uint32_t>(rng.Uniform(size * 4)));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return pool;
}

void BM_IntersectScalar(benchmark::State& state) {
  const auto pool = MicroIdPool(64);
  size_t it = 0;
  for (auto _ : state) {
    const auto& a = pool[it % pool.size()];
    const auto& b = pool[(it * 7 + 13) % pool.size()];
    benchmark::DoNotOptimize(distance::ScalarSortedIdIntersectionSize(
        a.data(), a.size(), b.data(), b.size()));
    ++it;
  }
}
BENCHMARK(BM_IntersectScalar);

void BM_IntersectAvx2(benchmark::State& state) {
  if (!distance::simd::CpuHasAvx2Fma()) {
    state.SkipWithError("CPU lacks AVX2/FMA");
    return;
  }
  const auto pool = MicroIdPool(64);
  size_t it = 0;
  for (auto _ : state) {
    const auto& a = pool[it % pool.size()];
    const auto& b = pool[(it * 7 + 13) % pool.size()];
    benchmark::DoNotOptimize(distance::simd::Avx2SortedIntersectionSize(
        a.data(), a.size(), b.data(), b.size()));
    ++it;
  }
}
BENCHMARK(BM_IntersectAvx2);

// Bitset-container kernels of the blocking posting layer: OR / AND /
// popcount over one 64K-id chunk (1024 words), scalar oracle vs the
// AVX2 kernels reached through dispatch.
std::vector<uint64_t> MicroBitsetWords(uint64_t seed) {
  util::Rng rng(seed);
  std::vector<uint64_t> words(blocking::kPostingBitsetWords);
  for (auto& w : words) {
    w = (static_cast<uint64_t>(rng.Uniform(1u << 31)) << 33) ^
        (static_cast<uint64_t>(rng.Uniform(1u << 31)) << 2) ^
        rng.Uniform(4);
  }
  return words;
}

void BM_BitsetOrScalar(benchmark::State& state) {
  const auto src = MicroBitsetWords(41);
  auto dst = MicroBitsetWords(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocking::ScalarBitsetOrPopcount(
        dst.data(), src.data(), dst.size()));
  }
  state.SetBytesProcessed(state.iterations() * dst.size() * 8);
}
BENCHMARK(BM_BitsetOrScalar);

void BM_BitsetOrAvx2(benchmark::State& state) {
  if (!distance::simd::CpuHasAvx2Fma()) {
    state.SkipWithError("CPU lacks AVX2/FMA");
    return;
  }
  const auto src = MicroBitsetWords(41);
  auto dst = MicroBitsetWords(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::simd::Avx2BitsetOrPopcount(
        dst.data(), src.data(), dst.size()));
  }
  state.SetBytesProcessed(state.iterations() * dst.size() * 8);
}
BENCHMARK(BM_BitsetOrAvx2);

void BM_BitsetAndScalar(benchmark::State& state) {
  const auto src = MicroBitsetWords(41);
  auto dst = MicroBitsetWords(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocking::ScalarBitsetAndPopcount(
        dst.data(), src.data(), dst.size()));
  }
  state.SetBytesProcessed(state.iterations() * dst.size() * 8);
}
BENCHMARK(BM_BitsetAndScalar);

void BM_BitsetAndAvx2(benchmark::State& state) {
  if (!distance::simd::CpuHasAvx2Fma()) {
    state.SkipWithError("CPU lacks AVX2/FMA");
    return;
  }
  const auto src = MicroBitsetWords(41);
  auto dst = MicroBitsetWords(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance::simd::Avx2BitsetAndPopcount(
        dst.data(), src.data(), dst.size()));
  }
  state.SetBytesProcessed(state.iterations() * dst.size() * 8);
}
BENCHMARK(BM_BitsetAndAvx2);

void BM_BitsetPopcountScalar(benchmark::State& state) {
  const auto words = MicroBitsetWords(47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blocking::ScalarBitsetPopcount(words.data(), words.size()));
  }
  state.SetBytesProcessed(state.iterations() * words.size() * 8);
}
BENCHMARK(BM_BitsetPopcountScalar);

void BM_BitsetPopcountAvx2(benchmark::State& state) {
  if (!distance::simd::CpuHasAvx2Fma()) {
    state.SkipWithError("CPU lacks AVX2/FMA");
    return;
  }
  const auto words = MicroBitsetWords(47);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        distance::simd::Avx2BitsetPopcount(words.data(), words.size()));
  }
  state.SetBytesProcessed(state.iterations() * words.size() * 8);
}
BENCHMARK(BM_BitsetPopcountAvx2);

// PostingSet union at the container-algebra level: array-heavy vs
// bitset-heavy accumulation, at both dispatch levels (arg 0 = scalar,
// arg 1 = avx2).
std::vector<blocking::PostingSet> MicroPostingPool(size_t count,
                                                   size_t list_size,
                                                   size_t id_space) {
  util::Rng rng(53);
  std::vector<blocking::PostingSet> pool(count);
  for (auto& set : pool) {
    for (size_t i = 0; i < list_size; ++i) {
      set.Add(static_cast<uint32_t>(rng.Uniform(id_space)));
    }
  }
  return pool;
}

void RunPostingUnionBench(benchmark::State& state,
                          const std::vector<blocking::PostingSet>& pool) {
  namespace simd = distance::simd;
  if (state.range(0) == 1 && !simd::CpuHasAvx2Fma()) {
    state.SkipWithError("CPU lacks AVX2/FMA");
    return;
  }
  simd::ScopedSimdOverride level(state.range(0) == 1
                                     ? simd::Level::kAvx2Fma
                                     : simd::Level::kScalar);
  blocking::PostingSet acc;
  size_t it = 0;
  for (auto _ : state) {
    acc.Clear();
    acc.UnionWith(pool[it % pool.size()]);
    acc.UnionWith(pool[(it * 7 + 13) % pool.size()]);
    acc.UnionWith(pool[(it * 31 + 5) % pool.size()]);
    benchmark::DoNotOptimize(acc.cardinality());
    ++it;
  }
}

void BM_PostingUnionArrays(benchmark::State& state) {
  // 256-id lists over 64K ids: sparse array containers only.
  static const auto& pool =
      *new std::vector<blocking::PostingSet>(MicroPostingPool(64, 256, 65536));
  RunPostingUnionBench(state, pool);
}
BENCHMARK(BM_PostingUnionArrays)->Arg(0)->Arg(1);

void BM_PostingUnionBitsets(benchmark::State& state) {
  // 12K-id lists over 32K ids: dense bitset containers, the OR-kernel
  // regime.
  static const auto& pool = *new std::vector<blocking::PostingSet>(
      MicroPostingPool(64, 12288, 32768));
  RunPostingUnionBench(state, pool);
}
BENCHMARK(BM_PostingUnionBitsets)->Arg(0)->Arg(1);

// The stage-1 kernel behind ScoreBatch: 8 queries swept over one SoA
// block, as 8 scalar single-query sweeps vs 1 batched sweep.
void BM_SoaSweepSingle8(benchmark::State& state) {
  const auto train = MicroTrainingSet(static_cast<size_t>(state.range(0)));
  const size_t n = train.size();
  std::vector<double> coords(distance::kDistanceDims * n);
  std::vector<int8_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = train[i].label;
    for (size_t d = 0; d < distance::kDistanceDims; ++d) {
      coords[d * n + i] = train[i].vector[d];
    }
  }
  util::Rng rng(23);
  distance::DistanceVector queries[ml::kSoaBatchMaxQueries];
  for (auto& q : queries) {
    for (size_t d = 0; d < distance::kDistanceDims; ++d) {
      q[d] = rng.UniformDouble();
    }
  }
  std::vector<ml::Neighbor> heap;
  for (auto _ : state) {
    for (const auto& q : queries) {
      heap.clear();
      ml::SoaKnnSweep(q, coords.data(), n, 0, n, labels.data(), 9, &heap);
      benchmark::DoNotOptimize(heap.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * n * ml::kSoaBatchMaxQueries);
}
BENCHMARK(BM_SoaSweepSingle8)->Arg(4096)->Arg(65536);

void BM_SoaSweepBatch8(benchmark::State& state) {
  const auto train = MicroTrainingSet(static_cast<size_t>(state.range(0)));
  const size_t n = train.size();
  std::vector<double> coords(distance::kDistanceDims * n);
  std::vector<int8_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    labels[i] = train[i].label;
    for (size_t d = 0; d < distance::kDistanceDims; ++d) {
      coords[d * n + i] = train[i].vector[d];
    }
  }
  util::Rng rng(23);
  distance::DistanceVector queries[ml::kSoaBatchMaxQueries];
  const distance::DistanceVector* query_ptrs[ml::kSoaBatchMaxQueries];
  std::vector<ml::Neighbor> heaps[ml::kSoaBatchMaxQueries];
  std::vector<ml::Neighbor>* heap_ptrs[ml::kSoaBatchMaxQueries];
  for (size_t q = 0; q < ml::kSoaBatchMaxQueries; ++q) {
    for (size_t d = 0; d < distance::kDistanceDims; ++d) {
      queries[q][d] = rng.UniformDouble();
    }
    query_ptrs[q] = &queries[q];
    heap_ptrs[q] = &heaps[q];
  }
  for (auto _ : state) {
    for (auto& heap : heaps) heap.clear();
    ml::SoaKnnSweepBatch(query_ptrs, ml::kSoaBatchMaxQueries, coords.data(),
                         n, 0, n, labels.data(), 9, heap_ptrs);
    benchmark::DoNotOptimize(heaps[0].data());
  }
  state.SetItemsProcessed(state.iterations() * n * ml::kSoaBatchMaxQueries);
}
BENCHMARK(BM_SoaSweepBatch8)->Arg(4096)->Arg(65536);

void BM_KMeansIteration(benchmark::State& state) {
  std::vector<distance::DistanceVector> points;
  util::Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    distance::DistanceVector p;
    for (size_t d = 0; d < distance::kDistanceDims; ++d) {
      p[d] = rng.UniformDouble();
    }
    points.push_back(p);
  }
  for (auto _ : state) {
    ml::KMeansOptions options;
    options.num_clusters = 32;
    options.max_iterations = 1;
    benchmark::DoNotOptimize(ml::RunKMeans(points, options));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_KMeansIteration);

void BM_RddMapCollect(benchmark::State& state) {
  minispark::SparkContext ctx({.num_executors = 4});
  std::vector<int> data(100000);
  for (int i = 0; i < 100000; ++i) data[i] = i;
  for (auto _ : state) {
    auto rdd = ctx.Parallelize(data, 8).Map<int>([](int x) {
      return x * 2 + 1;
    });
    benchmark::DoNotOptimize(rdd.Collect());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_RddMapCollect);

void BM_RddReduceByKey(benchmark::State& state) {
  minispark::SparkContext ctx({.num_executors = 4});
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 100000; ++i) data.emplace_back(i % 97, i);
  for (auto _ : state) {
    auto rdd = ctx.Parallelize(data, 8);
    auto sums =
        minispark::ReduceByKey(rdd, [](int a, int b) { return a + b; }, 8);
    benchmark::DoNotOptimize(sums.Collect());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_RddReduceByKey);

}  // namespace
}  // namespace adrdedup::bench

BENCHMARK_MAIN();
