// Figure 9 — scalability with the training-set size: execution time for
// training sizes 1M-5M (scaled) at test-block numbers c in {4, 8, 12};
// 32 training clusters, 25 executors (paper setting).
//
// This reproduction runs on one machine, so cluster execution time is
// obtained from the minispark ClusterCostModel: measured per-task CPU
// durations are scheduled onto 25 simulated executors (LPT), plus the
// metered shuffle volume and per-executor coordination cost (see
// minispark/cluster_model.h and DESIGN.md).
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "minispark/cluster_model.h"

namespace adrdedup::bench {
namespace {

int Main() {
  PrintBanner("bench_fig9_training_scale",
              "Figure 9 (scalability with training set size)");
  const size_t test = Scaled(10000, 1000);
  constexpr size_t kExecutors = 25;
  std::cout << "testing pairs: " << test
            << ", training clusters: 32, simulated executors: "
            << kExecutors << "\n\n";
  minispark::SparkContext ctx({.num_executors = 4});
  const minispark::ClusterCostModel model;

  eval::TablePrinter table(
      &std::cout, {"paper train size (M)", "scaled size", "blocks c=4 (s)",
                   "blocks c=8 (s)", "blocks c=12 (s)"});
  for (int millions = 1; millions <= 5; ++millions) {
    const size_t train =
        Scaled(static_cast<size_t>(millions) * 1000000, 20000);
    const auto data = MakeDatasets(train, test, 100 + millions);

    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = 32;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx.pool());

    std::vector<std::string> row = {std::to_string(millions),
                                    std::to_string(train)};
    for (size_t blocks : {4u, 8u, 12u}) {
      ctx.metrics().Reset();
      (void)classifier.ScoreAllSpark(&ctx, data.test.pairs, blocks);
      const auto durations = ctx.metrics().TaskDurations();
      const auto snapshot = ctx.metrics().Snapshot();
      row.push_back(eval::TablePrinter::Num(
          model.SimulateExecutionSeconds(
              durations, snapshot.shuffle_bytes_written, kExecutors),
          3));
    }
    table.AddRow(row);
  }
  table.Print();
  std::cout << "(paper: time grows 1.4-2.1x when training grows 5x)\n";
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
