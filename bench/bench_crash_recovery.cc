// Crash recovery — the durability acceptance gate (DESIGN.md §5h):
//
//   * kill-and-restart matrix (hard fail): a forked screening service is
//     killed by the FaultFs crash script at >= 10 distinct seeded points
//     mid-journal-append (an effective SIGKILL — the process _exit()s
//     inside write(2) with a torn record on disk). Each restart must
//     replay the journal prefix and screen the remaining stream
//     bit-identically to an uninterrupted control run, ending with an
//     identical serving-state fingerprint.
//   * faulted-pipeline parity (hard fail): the batch detection pipeline
//     runs its persisted stages through spill + checkpoint files while a
//     fault script injects short writes, ENOSPC, EIO and read bit-flips
//     at up to a 10% op rate on those classes. CRC framing turns every
//     flip into a detected error, lineage / task retries recompute, and
//     the detections must match the fault-free run bit-exactly.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/dedup_pipeline.h"
#include "datagen/generator.h"
#include "distance/pair_dataset.h"
#include "minispark/context.h"
#include "serve/journal.h"
#include "serve/screening_service.h"
#include "util/fault_fs.h"
#include "util/random.h"

namespace adrdedup::bench {
namespace {

namespace fs = std::filesystem;
using distance::LabeledPair;
using distance::PairKey;

constexpr size_t kCrashPoints = 10;
constexpr double kFaultRates[] = {0.02, 0.05, 0.10};

struct Corpus {
  datagen::GeneratedCorpus corpus;
  std::vector<distance::ReportFeatures> features;
  size_t boot = 0;
};

Corpus MakeCorpus() {
  Corpus out;
  datagen::GeneratorConfig config;
  const size_t reports = Scaled(3000, 400);
  config.num_reports = reports;
  // The generator appends every duplicate copy after all originals, so
  // the copy region must extend well below the bootstrap/stream split:
  // copies inside the bootstrap become positive training pairs, and
  // every streamed copy has its partner bootstrapped (detectable).
  config.num_duplicate_pairs = reports / 5;
  config.num_drugs = 120;
  config.num_adrs = 200;
  out.corpus = datagen::GenerateCorpus(config);
  out.features = distance::ExtractAllFeatures(out.corpus.db);
  out.boot = reports - Scaled(300, 60);  // the rest arrives as a stream
  return out;
}

std::vector<LabeledPair> SeedFromTruth(const Corpus& data, size_t total) {
  std::vector<LabeledPair> seed;
  std::set<uint64_t> dups;
  for (auto [a, b] : data.corpus.duplicate_pairs) {
    dups.insert(PairKey({std::min(a, b), std::max(a, b)}));
    if (a >= data.boot || b >= data.boot) continue;
    LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    pair.label = +1;
    pair.vector =
        ComputeDistanceVector(data.features[a], data.features[b]);
    seed.push_back(pair);
  }
  util::Rng rng(29);
  while (seed.size() < total) {
    const auto a = static_cast<report::ReportId>(rng.Uniform(data.boot));
    const auto b = static_cast<report::ReportId>(rng.Uniform(data.boot));
    if (a == b) continue;
    distance::ReportPair pair{std::min(a, b), std::max(a, b)};
    if (dups.contains(PairKey(pair))) continue;
    LabeledPair labeled;
    labeled.pair = pair;
    labeled.label = -1;
    labeled.vector =
        ComputeDistanceVector(data.features[pair.a], data.features[pair.b]);
    seed.push_back(labeled);
  }
  return seed;
}

std::vector<report::AdrReport> Slice(const Corpus& data, size_t begin,
                                     size_t end) {
  std::vector<report::AdrReport> out;
  for (size_t i = begin; i < end; ++i) {
    out.push_back(data.corpus.db.Get(static_cast<report::ReportId>(i)));
  }
  return out;
}

core::DedupPipelineOptions PipelineOptions() {
  core::DedupPipelineOptions options;
  options.knn.k = 7;
  options.knn.num_clusters = 10;
  options.theta = 0.0;
  options.f_theta = 0.9;
  options.use_blocking = true;
  options.blocking.keys = {blocking::BlockingKey::kDrugToken,
                           blocking::BlockingKey::kAdrToken};
  return options;
}

// One request per micro-batch, fsync on every append, no background
// refreshes: the child's journal prefix defines exactly which screened
// reports were durable when the crash script killed it.
serve::ScreeningServiceOptions DurableOptions(const std::string& dir) {
  serve::ScreeningServiceOptions options;
  options.pipeline = PipelineOptions();
  options.max_batch = 1;
  options.max_linger_ms = 0.0;
  options.refresh_every = 0;
  options.journal_dir = dir;
  options.fsync_policy = serve::FsyncPolicy::kAlways;
  return options;
}

struct Decision {
  report::ReportId assigned_id = 0;
  std::vector<serve::ScreenMatch> matches;
};

bool SameDecision(const Decision& a, const Decision& b) {
  if (a.assigned_id != b.assigned_id) return false;
  if (a.matches.size() != b.matches.size()) return false;
  for (size_t i = 0; i < a.matches.size(); ++i) {
    if (a.matches[i].other != b.matches[i].other) return false;
    if (a.matches[i].other_case_number != b.matches[i].other_case_number) {
      return false;
    }
    if (a.matches[i].score != b.matches[i].score) return false;
  }
  return true;
}

Decision ScreenOne(serve::ScreeningService& service,
                   const report::AdrReport& report) {
  auto response = service.Screen(report);
  Decision decision;
  if (!response.ok()) {
    std::cerr << "screen failed: " << response.status().ToString() << "\n";
    return decision;
  }
  decision.assigned_id = response.value().assigned_id;
  decision.matches = response.value().matches;
  return decision;
}

// ---------------------------------------------------------------------------
// Phase 1: kill-and-restart matrix over the screening service.

bool RunCrashMatrix(const Corpus& data, const fs::path& root) {
  const auto bootstrap = Slice(data, 0, data.boot);
  const auto stream = Slice(data, data.boot, data.corpus.db.size());
  const auto seed = SeedFromTruth(data, Scaled(4000, 1500));

  std::cout << "\nphase 1: kill-and-restart matrix (" << bootstrap.size()
            << " bootstrapped, " << stream.size() << " streamed, "
            << kCrashPoints << " seeded crash points)\n\n";

  // Uninterrupted control: the decisions every recovery must reproduce.
  std::vector<Decision> control;
  uint64_t control_fingerprint = 0;
  {
    fs::create_directories(root / "control");
    minispark::SparkContext ctx({.num_executors = 2});
    serve::ScreeningService service(&ctx,
                                    DurableOptions((root / "control").string()));
    service.Bootstrap(bootstrap);
    service.SeedLabels(seed);
    auto started = service.Start();
    if (!started.ok()) {
      std::cerr << "FAIL: control run did not start: " << started.ToString()
                << "\n";
      return false;
    }
    for (const auto& report : stream) {
      control.push_back(ScreenOne(service, report));
    }
    service.Stop();
    control_fingerprint = service.metrics().state_fingerprint();
  }

  // Journal ops under fsync=always: Create costs 2 (header + fsync) and
  // each append 2 more, so crash points in (2, 2 + 2*|stream|) land
  // mid-stream. Spread kCrashPoints of them across that window.
  const uint64_t first_op = 3;
  const uint64_t last_op = 2 + 2 * (stream.size() - 1);
  eval::TablePrinter table(&std::cout,
                           {"crash op", "exit", "survived", "replayed",
                            "decisions", "fingerprint"});
  bool all_ok = true;
  for (size_t point = 0; point < kCrashPoints; ++point) {
    const uint64_t crash_op =
        first_op + point * (last_op - first_op) / (kCrashPoints - 1);
    const fs::path dir = root / ("crash-" + std::to_string(point));
    fs::create_directories(dir);

    // Flush before forking: with stdout on a pipe the child would
    // inherit (and eventually re-emit) the parent's buffered output.
    std::cout.flush();
    ::fflush(nullptr);
    const pid_t child = fork();
    if (child < 0) {
      std::cerr << "FAIL: fork: " << std::strerror(errno) << "\n";
      return false;
    }
    if (child == 0) {
      util::FaultScript script;
      script.seed = 40 + point;
      script.crash_after_ops = crash_op;
      script.class_mask = util::FileClassBit(util::FileClass::kJournal);
      util::FaultFs::Instance().SetScript(script);
      minispark::SparkContext ctx({.num_executors = 2});
      serve::ScreeningService service(&ctx, DurableOptions(dir.string()));
      service.Bootstrap(bootstrap);
      service.SeedLabels(seed);
      if (!service.Start().ok()) _exit(42);
      for (const auto& report : stream) {
        if (!service.Screen(report).ok()) _exit(43);
      }
      _exit(44);  // the crash script should have killed us mid-stream
    }
    int wait_status = 0;
    waitpid(child, &wait_status, 0);
    const bool killed =
        WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 137;

    // Restart over the crash dir and resume from where the journal ends.
    size_t survived = 0;
    uint64_t replayed = 0;
    bool decisions_ok = killed;
    bool fingerprint_ok = killed;
    if (killed) {
      minispark::SparkContext ctx({.num_executors = 2});
      serve::ScreeningService service(&ctx, DurableOptions(dir.string()));
      service.Bootstrap(bootstrap);
      service.SeedLabels(seed);
      auto started = service.Start();
      if (!started.ok()) {
        std::cerr << "FAIL: restart after crash op " << crash_op << ": "
                  << started.ToString() << "\n";
        decisions_ok = fingerprint_ok = false;
      } else {
        survived = service.db_size() - bootstrap.size();
        replayed = service.metrics().recovery_replayed_records();
        if (survived >= stream.size()) decisions_ok = false;
        for (size_t i = survived; i < stream.size(); ++i) {
          if (!SameDecision(ScreenOne(service, stream[i]), control[i])) {
            decisions_ok = false;
          }
        }
        service.Stop();
        fingerprint_ok =
            service.metrics().state_fingerprint() == control_fingerprint;
      }
    }
    table.AddRow({std::to_string(crash_op), killed ? "137" : "BAD",
                  std::to_string(survived), std::to_string(replayed),
                  decisions_ok ? "exact" : "DIVERGED",
                  fingerprint_ok ? "equal" : "DIFFERS"});
    all_ok = all_ok && killed && decisions_ok && fingerprint_ok;
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  table.Print();
  std::cout << "(every restart must resume the control run's decision "
               "stream byte-for-byte)\n";
  return all_ok;
}

// ---------------------------------------------------------------------------
// Phase 2: batch detections under spill/checkpoint I/O faults.

struct DetectionTrace {
  std::vector<uint64_t> keys;
  std::vector<double> scores;
  std::vector<double> checkpoint_echo;
  size_t pairs_considered = 0;
  minispark::MetricsSnapshot metrics;
};

DetectionTrace RunPipeline(const Corpus& data, const fs::path& io_dir,
                           size_t batch) {
  minispark::SparkContext ctx({.num_executors = 4,
                               .max_task_failures = 8,
                               .memory_budget_bytes = 1 << 18,
                               .spill_dir = (io_dir / "spill").string(),
                               .checkpoint_dir =
                                   (io_dir / "checkpoint").string()});
  core::DedupPipelineOptions options = PipelineOptions();
  options.persist_level = minispark::storage::StorageLevel::kDiskOnly;
  core::DedupPipeline pipeline(&ctx, options);
  pipeline.BootstrapDatabase(Slice(data, 0, data.boot));
  pipeline.SeedLabels(SeedFromTruth(data, Scaled(4000, 1500)));

  DetectionTrace trace;
  for (size_t from = data.boot; from < data.corpus.db.size(); from += batch) {
    const size_t to = std::min(from + batch, data.corpus.db.size());
    const auto result = pipeline.ProcessNewReports(Slice(data, from, to));
    trace.pairs_considered += result.pairs_considered;
    for (size_t i = 0; i < result.duplicates.size(); ++i) {
      trace.keys.push_back(PairKey(result.duplicates[i]));
      trace.scores.push_back(result.scores[i]);
    }
  }
  // A checkpointed RDD round-trip so the kCheckpoint class sees real
  // write AND read-back traffic under the fault script (the pipeline's
  // persisted stages only exercise the spill class).
  trace.checkpoint_echo = ctx.Parallelize(trace.scores, 4)
                              .Checkpoint()
                              .Map<double>([](const double& s) { return s; })
                              .Collect();
  trace.metrics = ctx.metrics().Snapshot();
  return trace;
}

bool RunFaultedPipelineParity(const Corpus& data, const fs::path& root) {
  const size_t batch = std::max<size_t>(Scaled(100, 20), 1);
  std::cout << "\nphase 2: detection parity under spill/checkpoint faults\n\n";

  const DetectionTrace baseline = RunPipeline(data, root / "io-clean", batch);
  std::cout << baseline.pairs_considered << " candidate pairs, "
            << baseline.keys.size()
            << " fault-free detections; fault classes: spill+checkpoint\n\n";

  eval::TablePrinter table(&std::cout,
                           {"op rate", "faulted ops", "degraded spills",
                            "retried", "recomputed", "parity"});
  bool all_ok = true;
  for (size_t i = 0; i < std::size(kFaultRates); ++i) {
    const double rate = kFaultRates[i];
    util::FaultScript script;
    script.seed = 60 + i;
    // Split the op rate across the four fault kinds so the *total*
    // chance an op misbehaves is `rate`.
    script.short_write_rate = rate / 4;
    script.enospc_rate = rate / 4;
    script.eio_rate = rate / 4;
    script.read_flip_rate = rate / 4;
    script.class_mask = util::FileClassBit(util::FileClass::kSpill) |
                        util::FileClassBit(util::FileClass::kCheckpoint);
    util::FaultFs::Instance().SetScript(script);

    const DetectionTrace faulted =
        RunPipeline(data, root / ("io-fault-" + std::to_string(i)), batch);
    const uint64_t injected = util::FaultFs::Instance().faults_injected();
    util::FaultFs::Instance().ClearScript();

    const bool exact = faulted.keys == baseline.keys &&
                       faulted.scores == baseline.scores &&
                       faulted.checkpoint_echo == baseline.checkpoint_echo;
    all_ok = all_ok && exact;
    table.AddRow({eval::TablePrinter::Num(rate, 2), std::to_string(injected),
                  std::to_string(faulted.metrics.spill_write_failures),
                  std::to_string(faulted.metrics.tasks_retried),
                  std::to_string(faulted.metrics.partitions_recomputed),
                  exact ? "exact" : "DIVERGED"});
    if (injected == 0) {
      std::cout << "warning: rate " << rate << " injected no faults\n";
      all_ok = false;
    }
  }
  table.Print();
  std::cout << "(CRC framing + lineage/task retries must absorb every "
               "injected fault without changing a detection)\n";
  return all_ok;
}

int Main() {
  PrintBanner("bench_crash_recovery",
              "crash-safe serving: WAL replay + faulted-I/O detection parity");
  const fs::path root =
      fs::temp_directory_path() /
      ("adrdedup-bench-crash-" + std::to_string(::getpid()));
  fs::remove_all(root);
  fs::create_directories(root);
  const Corpus data = MakeCorpus();

  const bool crash_ok = RunCrashMatrix(data, root);
  const bool fault_ok = RunFaultedPipelineParity(data, root);

  std::error_code ec;
  fs::remove_all(root, ec);
  if (!crash_ok) {
    std::cerr << "FAIL: a crash-restart run diverged from the control\n";
  }
  if (!fault_ok) {
    std::cerr << "FAIL: detections diverged under injected I/O faults\n";
  }
  return crash_ok && fault_ok ? 0 : 1;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
