// Figure 11 — effectiveness of testing-set pruning. Paper setting
// (scaled): 1M training pairs (266 positive), 204,736 testing pairs,
// 200 training clusters, 30 testing-set partitions, f(theta) in
// {0.3, 0.5, 0.7, 0.9}. Reports the fraction of testing pairs kept and
// the detection time with pruning (plus the unpruned baseline), and
// verifies that every true duplicate pair survives pruning.
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "core/test_set_pruner.h"

namespace adrdedup::bench {
namespace {

int Main() {
  PrintBanner("bench_fig11_pruning",
              "Figure 11 (effectiveness of testing-set pruning)");
  const size_t train = Scaled(1000000, 20000);
  const size_t test = Scaled(204736, 20000);
  std::cout << "training pairs: " << train << ", testing pairs: " << test
            << ", training clusters: 200, testing blocks: 30\n\n";
  const auto data = MakeDatasets(train, test);
  std::cout << "positive training pairs: " << data.train.CountPositive()
            << " (paper: 266)\n";

  minispark::SparkContext ctx({.num_executors = 4});
  core::FastKnnOptions knn_options;
  knn_options.k = 9;
  knn_options.num_clusters = 200;
  core::FastKnnClassifier classifier(knn_options);
  classifier.Fit(data.train.pairs, &ctx.pool());

  std::vector<distance::LabeledPair> train_positives;
  for (const auto& pair : data.train.pairs) {
    if (pair.is_positive()) train_positives.push_back(pair);
  }
  core::TestSetPruner pruner(core::TestSetPrunerOptions{.num_clusters = 8});
  pruner.Fit(train_positives);

  // Unpruned baseline detection time.
  util::Stopwatch baseline_watch;
  (void)classifier.ScoreAllSpark(&ctx, data.test.pairs, 30);
  const double baseline_seconds = baseline_watch.ElapsedSeconds();
  std::cout << "detection time without pruning: "
            << eval::TablePrinter::Num(baseline_seconds, 3) << " s\n\n";

  eval::TablePrinter table(
      &std::cout, {"threshold f(theta)", "fraction of test pairs kept",
                   "detection time (s)", "relative to unpruned",
                   "true duplicates kept"});
  for (double f_theta : {0.3, 0.5, 0.7, 0.9}) {
    const auto prune_result = pruner.Prune(data.test.pairs, f_theta);
    std::vector<distance::LabeledPair> kept;
    kept.reserve(prune_result.kept.size());
    size_t positives_kept = 0;
    for (size_t index : prune_result.kept) {
      kept.push_back(data.test.pairs[index]);
      if (data.test.pairs[index].is_positive()) ++positives_kept;
    }
    util::Stopwatch watch;
    (void)classifier.ScoreAllSpark(&ctx, kept, 30);
    const double seconds = watch.ElapsedSeconds();
    table.AddRow(
        {eval::TablePrinter::Num(f_theta, 1),
         eval::TablePrinter::Num(prune_result.KeptRatio(), 3),
         eval::TablePrinter::Num(seconds, 3),
         eval::TablePrinter::Num(seconds / baseline_seconds, 2),
         std::to_string(positives_kept) + "/" +
             std::to_string(data.test.CountPositive())});
  }
  table.Print();
  std::cout << "(paper: thresholds 0.3/0.5/0.7 cut detection time to "
               "35%/65%/61% of unpruned; all duplicates retained)\n";
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
