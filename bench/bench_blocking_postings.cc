// Gate bench for the roaring-style bitmap posting layer (ISSUE 10
// tentpole): candidate-set algebra (blocking/postings.h) against the
// flat sorted-vector blocking paths it replaces.
//
// Gates:
//   * batch GenerateCandidates bit-identical to a bench-local
//     reimplementation of the pre-PR algorithm (per-block pair sweep +
//     global seen-set + final PairKey sort) across key configurations
//     (hard fail — deterministic at any scale),
//   * incremental stream parity (hard): an interleaved add/probe stream
//     over the corpus produces candidate sets identical to a flat
//     append+sort+unique reference index, in string mode and in interned
//     mode,
//   * SIMD dispatch parity (hard): forced-scalar and forced-AVX2 runs of
//     the same union workload produce bit-identical candidate sets,
//   * >= 2x union throughput vs the flat append+sort+unique accumulator
//     (PASS/FAIL print; fails the process only under
//     ADRDEDUP_BENCH_STRICT=1, so timing noise on tiny smoke runs cannot
//     flake CI),
//   * posting memory below the flat sorted-vector bytes on the same
//     lists (strict-only, measured and printed at any scale).
#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "blocking/blocking.h"
#include "blocking/incremental_index.h"
#include "blocking/postings.h"
#include "distance/interned.h"
#include "distance/simd/dispatch.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace adrdedup::bench {
namespace {

using blocking::BlockingKey;
using blocking::BlockingOptions;
using blocking::PostingSet;
using distance::ReportFeatures;
using distance::ReportPair;

// The pre-PR batch algorithm, kept verbatim as the parity reference:
// bucket ids per key string, sweep each non-oversized block pairwise,
// deduplicate through a global seen-set, sort by PairKey at the end.
blocking::BlockingResult ReferenceGenerateCandidates(
    const std::vector<ReportFeatures>& features,
    const BlockingOptions& options) {
  blocking::BlockingResult result;
  std::unordered_set<uint64_t> seen;
  for (BlockingKey key : options.keys) {
    std::unordered_map<std::string, std::vector<uint32_t>> blocks;
    for (size_t i = 0; i < features.size(); ++i) {
      for (const std::string& value : BlockingKeysOf(features[i], key)) {
        blocks[value].push_back(static_cast<uint32_t>(i));
      }
    }
    result.total_blocks += blocks.size();
    for (const auto& [value, members] : blocks) {
      if (options.max_block_size != 0 &&
          members.size() > options.max_block_size) {
        ++result.oversized_blocks_skipped;
        continue;
      }
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          const ReportPair pair{std::min(members[i], members[j]),
                                std::max(members[i], members[j])};
          if (seen.insert(PairKey(pair)).second) {
            result.pairs.push_back(pair);
          }
        }
      }
    }
  }
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const ReportPair& a, const ReportPair& b) {
              return PairKey(a) < PairKey(b);
            });
  return result;
}

// The pre-PR incremental index, kept as the stream-parity reference:
// flat posting vectors, probe-time append + sort + unique, blocks past
// max_block_size skipped at probe time (the incremental semantic).
class ReferenceIncrementalIndex {
 public:
  explicit ReferenceIncrementalIndex(const BlockingOptions& options)
      : options_(options), postings_(options.keys.size()) {}

  void Add(uint32_t id, const ReportFeatures& features) {
    for (size_t k = 0; k < options_.keys.size(); ++k) {
      for (const std::string& value :
           BlockingKeysOf(features, options_.keys[k])) {
        postings_[k][value].push_back(id);
      }
    }
  }

  std::vector<uint32_t> Candidates(const ReportFeatures& features) const {
    std::vector<uint32_t> ids;
    for (size_t k = 0; k < options_.keys.size(); ++k) {
      for (const std::string& value :
           BlockingKeysOf(features, options_.keys[k])) {
        const auto it = postings_[k].find(value);
        if (it == postings_[k].end()) continue;
        if (options_.max_block_size != 0 &&
            it->second.size() > options_.max_block_size) {
          continue;
        }
        ids.insert(ids.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  }

 private:
  BlockingOptions options_;
  std::vector<std::unordered_map<std::string, std::vector<uint32_t>>>
      postings_;
};

bool PairListsEqual(const blocking::BlockingResult& a,
                    const blocking::BlockingResult& b) {
  return a.pairs == b.pairs && a.total_blocks == b.total_blocks &&
         a.oversized_blocks_skipped == b.oversized_blocks_skipped;
}

// Synthetic posting lists with the density mix the serving index sees:
// mostly sparse array containers plus a dense tier that promotes to
// bitsets. Ids span `id_space` reports.
std::vector<std::vector<uint32_t>> SyntheticPostings(size_t num_lists,
                                                     size_t id_space,
                                                     uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<uint32_t>> lists(num_lists);
  for (size_t l = 0; l < num_lists; ++l) {
    size_t target;
    if (l % 3 == 0) {
      target = 16 + rng.Uniform(96);  // sparse: small array containers
    } else if (l % 3 == 1) {
      target = 512 + rng.Uniform(1024);  // medium arrays
    } else {
      target = id_space / 2 + rng.Uniform(id_space / 4);  // dense: bitsets
    }
    auto& ids = lists[l];
    ids.reserve(target);
    for (size_t i = 0; i < target; ++i) {
      ids.push_back(static_cast<uint32_t>(rng.Uniform(id_space)));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    ids.shrink_to_fit();
  }
  return lists;
}

// One union-accumulation sweep over the probe schedule with the flat
// append+sort+unique accumulator. Returns (seconds, checksum).
std::pair<double, uint64_t> RunFlatUnions(
    const std::vector<std::vector<uint32_t>>& lists,
    const std::vector<std::vector<uint32_t>>& probes) {
  uint64_t checksum = 0;
  std::vector<uint32_t> acc;
  util::Stopwatch watch;
  for (const auto& probe : probes) {
    acc.clear();
    for (const uint32_t list : probe) {
      acc.insert(acc.end(), lists[list].begin(), lists[list].end());
    }
    std::sort(acc.begin(), acc.end());
    acc.erase(std::unique(acc.begin(), acc.end()), acc.end());
    checksum += acc.size();
    if (!acc.empty()) checksum ^= acc.front() + 31u * acc.back();
  }
  return {watch.ElapsedSeconds(), checksum};
}

std::pair<double, uint64_t> RunPostingUnions(
    const std::vector<PostingSet>& lists,
    const std::vector<std::vector<uint32_t>>& probes) {
  uint64_t checksum = 0;
  PostingSet acc;
  util::Stopwatch watch;
  for (const auto& probe : probes) {
    acc.Clear();
    for (const uint32_t list : probe) acc.UnionWith(lists[list]);
    checksum += acc.cardinality();
    if (!acc.empty()) {
      uint32_t first = 0;
      uint32_t last = 0;
      bool have_first = false;
      acc.ForEach([&](uint32_t id) {
        if (!have_first) {
          first = id;
          have_first = true;
        }
        last = id;
      });
      checksum ^= first + 31u * last;
    }
  }
  return {watch.ElapsedSeconds(), checksum};
}

int Run() {
  PrintBanner("blocking-postings",
              "ISSUE 10 gate: roaring bitmap postings vs flat sorted "
              "vectors in the blocking layer");
  const bool strict = [] {
    const char* env = std::getenv("ADRDEDUP_BENCH_STRICT");
    return env != nullptr && std::string(env) == "1";
  }();
  namespace simd = distance::simd;

  const auto& workload = SharedWorkload();
  const auto& features = workload.features;
  bool failed = false;

  // --- Gate 1: batch GenerateCandidates parity (hard). ---
  // Every key configuration the CLI exposes, plus a tight block-size cap
  // so the oversized-skip path is exercised.
  {
    std::vector<std::pair<std::string, BlockingOptions>> configs;
    BlockingOptions drug;
    drug.keys = {BlockingKey::kDrugToken};
    configs.emplace_back("drug", drug);
    BlockingOptions multi;
    multi.keys = {BlockingKey::kDrugToken, BlockingKey::kAdrToken,
                  BlockingKey::kSexAndAgeBand};
    configs.emplace_back("drug+adr+sex/age", multi);
    BlockingOptions capped = multi;
    capped.max_block_size = 50;
    configs.emplace_back("drug+adr+sex/age cap=50", capped);
    BlockingOptions uncapped = multi;
    uncapped.max_block_size = 0;
    configs.emplace_back("drug+adr+sex/age uncapped", uncapped);

    bool parity = true;
    for (const auto& [name, options] : configs) {
      const auto bitmap = blocking::GenerateCandidates(features, options);
      const auto reference = ReferenceGenerateCandidates(features, options);
      const bool ok = PairListsEqual(bitmap, reference);
      std::cout << "  batch config '" << name << "': " << bitmap.pairs.size()
                << " pairs, " << bitmap.total_blocks << " blocks -> "
                << (ok ? "match" : "MISMATCH") << "\n";
      parity = parity && ok;
    }
    std::cout << "GATE batch candidate pairs bit-identical to pre-PR "
                 "algorithm: "
              << (parity ? "PASS" : "FAIL") << std::endl;
    if (!parity) failed = true;
  }

  // --- Gate 2: incremental stream parity (hard). ---
  // Interleaved add/probe over the corpus: every probe's candidate set
  // must match the flat reference, in string mode and interned mode.
  {
    BlockingOptions options;
    options.keys = {BlockingKey::kDrugToken, BlockingKey::kAdrToken,
                    BlockingKey::kSexAndAgeBand};
    const size_t stream = std::min(features.size(), Scaled(10382, 800));
    blocking::IncrementalBlockingIndex string_index(options);
    blocking::IncrementalBlockingIndex interned_index(options);
    ReferenceIncrementalIndex reference(options);
    distance::TokenDictionary dict = distance::TokenDictionary::Build(
        features);
    const auto interned = distance::InternAllFeatures(features, &dict);
    bool parity = true;
    size_t candidates_seen = 0;
    for (size_t i = 0; i < stream && parity; ++i) {
      const auto got_string = string_index.Candidates(features[i]);
      const auto got_interned = interned_index.Candidates(interned[i]);
      const auto expected = reference.Candidates(features[i]);
      parity = got_string == expected && got_interned == expected;
      candidates_seen += expected.size();
      const auto id = static_cast<report::ReportId>(i);
      string_index.Add(id, features[i]);
      interned_index.Add(id, interned[i]);
      reference.Add(id, features[i]);
    }
    std::cout << "  stream of " << stream << " reports, " << candidates_seen
              << " candidates returned\n";
    const auto stats = string_index.Stats();
    std::cout << "  string index: " << stats.posting_containers
              << " containers (" << stats.bitset_containers << " bitset), "
              << stats.posting_bytes << " posting bytes, "
              << stats.candidate_unions << " block unions\n";
    std::cout << "GATE incremental candidates (string + interned modes) == "
                 "flat reference: "
              << (parity ? "PASS" : "FAIL") << std::endl;
    if (!parity) failed = true;
  }

  // --- Union-algebra workload (gates 3-5). ---
  // Posting lists with the serving density mix over a scaled id space;
  // each probe unions a handful of lists, as a candidate probe does.
  const size_t id_space = Scaled(100000, 20000);
  const size_t num_lists = 192;
  const auto flat_lists = SyntheticPostings(num_lists, id_space, 83);
  std::vector<PostingSet> posting_lists(num_lists);
  size_t bitset_lists = 0;
  for (size_t l = 0; l < num_lists; ++l) {
    for (const uint32_t id : flat_lists[l]) posting_lists[l].Add(id);
    bitset_lists +=
        static_cast<size_t>(posting_lists[l].num_bitset_containers() > 0);
  }
  const size_t num_probes = Scaled(20000, 400);
  util::Rng probe_rng(97);
  std::vector<std::vector<uint32_t>> probes(num_probes);
  for (auto& probe : probes) {
    const size_t fan = 3 + probe_rng.Uniform(5);
    for (size_t p = 0; p < fan; ++p) {
      probe.push_back(static_cast<uint32_t>(probe_rng.Uniform(num_lists)));
    }
  }
  std::cout << "union workload: " << num_lists << " lists (" << bitset_lists
            << " with bitset containers) over " << id_space
            << " ids, " << num_probes << " probes\n";

  // --- Gate 3: SIMD dispatch parity (hard). ---
  // The same probe schedule under both dispatch levels, result sets
  // compared element-wise (and checksums across the timed runs below).
  {
    bool parity = true;
    if (simd::CpuHasAvx2Fma()) {
      for (size_t sample = 0; sample < probes.size() && parity;
           sample += 37) {
        std::vector<uint32_t> scalar_ids;
        std::vector<uint32_t> simd_ids;
        {
          simd::ScopedSimdOverride level(simd::Level::kScalar);
          PostingSet acc;
          for (const uint32_t list : probes[sample]) {
            acc.UnionWith(posting_lists[list]);
          }
          scalar_ids = acc.ToVector();
        }
        {
          simd::ScopedSimdOverride level(simd::Level::kAvx2Fma);
          PostingSet acc;
          for (const uint32_t list : probes[sample]) {
            acc.UnionWith(posting_lists[list]);
          }
          simd_ids = acc.ToVector();
        }
        parity = scalar_ids == simd_ids;
      }
      std::cout << "GATE scalar vs avx2 dispatch: candidate sets "
                   "bit-identical: "
                << (parity ? "PASS" : "FAIL") << std::endl;
    } else {
      std::cout << "GATE scalar vs avx2 dispatch: SKIP (CPU lacks "
                   "AVX2/FMA; scalar oracle is the only path)"
                << std::endl;
    }
    if (!parity) failed = true;
  }

  // --- Gate 4: union throughput (strict-only timing; checksum parity
  // stays a hard gate). ---
  {
    (void)RunFlatUnions(flat_lists, probes);  // warmup
    const auto [flat_seconds, flat_sum] = RunFlatUnions(flat_lists, probes);
    (void)RunPostingUnions(posting_lists, probes);  // warmup
    const auto [posting_seconds, posting_sum] =
        RunPostingUnions(posting_lists, probes);
    if (flat_sum != posting_sum) {
      std::cout << "GATE union checksum parity: FAIL (flat " << flat_sum
                << " vs postings " << posting_sum << ")" << std::endl;
      failed = true;
    }
    const double speedup = flat_seconds / posting_seconds;
    eval::TablePrinter throughput(&std::cout,
                                  {"accumulator", "probes/sec", "speedup"});
    throughput.set_export_name("blocking_postings_union_throughput");
    throughput.AddRow(
        {"flat append+sort+unique (pre-PR)",
         eval::TablePrinter::Num(
             static_cast<double>(num_probes) / flat_seconds, 0),
         "1.00"});
    throughput.AddRow(
        {"roaring bitmap union",
         eval::TablePrinter::Num(
             static_cast<double>(num_probes) / posting_seconds, 0),
         eval::TablePrinter::Num(speedup, 2)});
    throughput.Print();
    const bool throughput_ok = speedup >= 2.0;
    std::cout << "GATE bitmap union >= 2.0x flat accumulator: "
              << (throughput_ok ? "PASS" : "FAIL") << " (" << speedup << "x)"
              << std::endl;
    if (!throughput_ok && strict) failed = true;
  }

  // --- Gate 5: posting memory (strict-only). ---
  {
    size_t flat_bytes = 0;
    for (const auto& ids : flat_lists) {
      flat_bytes += sizeof(std::vector<uint32_t>) +
                    ids.capacity() * sizeof(uint32_t);
    }
    size_t posting_bytes = 0;
    for (const auto& set : posting_lists) posting_bytes += ByteSizeOf(set);
    const double reduction = 1.0 - static_cast<double>(posting_bytes) /
                                       static_cast<double>(flat_bytes);
    eval::TablePrinter memory(&std::cout, {"representation", "bytes"});
    memory.set_export_name("blocking_postings_memory");
    memory.AddRow({"flat sorted uint32 vectors (pre-PR)",
                   eval::TablePrinter::Num(
                       static_cast<double>(flat_bytes), 0)});
    memory.AddRow({"roaring containers",
                   eval::TablePrinter::Num(
                       static_cast<double>(posting_bytes), 0)});
    memory.Print();
    const bool memory_ok = posting_bytes < flat_bytes;
    std::cout << "GATE posting memory below flat vectors: "
              << (memory_ok ? "PASS" : "FAIL") << " ("
              << eval::TablePrinter::Num(reduction * 100.0, 1)
              << "% reduction)" << std::endl;
    if (!memory_ok && strict) failed = true;
  }

  return failed ? 1 : 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Run(); }
