// Ablation benches for the design choices DESIGN.md calls out:
//   A1. Algorithm-1 hyperplane pruning ON vs OFF (naive all-partition
//       search of Section 4.3.1) — comparison volume and wall time.
//   A2. Inverse-distance score (Eq. 5) vs unweighted majority vote
//       (Eq. 1) — AUPR under imbalance.
//   A3. k-means Voronoi partitioning vs random (block-based [25])
//       partitioning — cross-cluster search volume.
//   A4. Free-text NLP pipeline (tokenize/stop-word/stem) ON vs OFF —
//       AUPR.
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "eval/metrics.h"
#include "ml/knn.h"
#include "util/random.h"

namespace adrdedup::bench {
namespace {

void AblationPruning(const distance::LabeledPairDatasets& data,
                     minispark::SparkContext* ctx) {
  eval::PrintSection(&std::cout,
                     "A1: Algorithm-1 pruning vs naive all-partition join");
  eval::TablePrinter table(
      &std::cout, {"variant", "cross-cluster comparisons",
                   "additional clusters", "time (s)"});
  for (bool prune : {true, false}) {
    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = 48;
    options.prune_with_hyperplanes = prune;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx->pool());
    util::Stopwatch watch;
    (void)classifier.ScoreAllSpark(ctx, data.test.pairs);
    const auto stats = classifier.stats().Snapshot();
    table.AddRow({prune ? "Algorithm 1 (paper)" : "naive (all partitions)",
                  std::to_string(stats.cross_cluster_comparisons),
                  std::to_string(stats.additional_clusters_checked),
                  eval::TablePrinter::Num(watch.ElapsedSeconds(), 3)});
  }
  table.Print();
}

void AblationVote(const distance::LabeledPairDatasets& data,
                  minispark::SparkContext* ctx) {
  eval::PrintSection(&std::cout,
                     "A2: Eq.5 inverse-distance score vs Eq.1 majority vote");
  const auto labels = LabelsOf(data.test);
  eval::TablePrinter table(&std::cout, {"scoring rule", "AUPR"});
  for (auto [vote, name] :
       {std::pair{ml::KnnVote::kInverseDistance, "Eq. 5 (paper)"},
        std::pair{ml::KnnVote::kMajority, "Eq. 1 majority"}}) {
    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = 32;
    options.vote = vote;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx->pool());
    const auto scores = classifier.ScoreAllSpark(ctx, data.test.pairs);
    table.AddRow({name,
                  eval::TablePrinter::Num(eval::Aupr(scores, labels), 3)});
  }
  table.Print();
}

void AblationPartitioning(const distance::LabeledPairDatasets& data,
                          minispark::SparkContext* ctx) {
  eval::PrintSection(
      &std::cout, "A3: k-means Voronoi vs random block partitioning");
  // Random partitioning = shuffle the training vectors before clustering
  // has no meaning, so emulate block-based partitioning [25] by fitting
  // on a label-preserving random permutation of the *vectors* assigned
  // round-robin: we model it by running FastKnn with 1 cluster (no
  // locality, every query scans everything) against b=48 Voronoi cells.
  eval::TablePrinter table(
      &std::cout,
      {"partitioning", "total negative comparisons / query", "time (s)"});
  for (auto [clusters, name] :
       {std::pair{48u, "k-means Voronoi (paper)"},
        std::pair{1u, "single block (no locality)"}}) {
    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = clusters;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx->pool());
    util::Stopwatch watch;
    (void)classifier.ScoreAllSpark(ctx, data.test.pairs);
    const auto stats = classifier.stats().Snapshot();
    const double per_query =
        static_cast<double>(stats.intra_cluster_comparisons +
                            stats.cross_cluster_comparisons) /
        static_cast<double>(stats.queries);
    table.AddRow({name, eval::TablePrinter::Num(per_query, 0),
                  eval::TablePrinter::Num(watch.ElapsedSeconds(), 3)});
  }
  table.Print();
}

// Shared helper: AUPR of Fast kNN over datasets built with the given
// feature and pairwise options.
double AuprWithOptions(minispark::SparkContext* ctx,
                       const distance::FeatureOptions& feature_options,
                       const distance::PairwiseOptions& pairwise_options) {
  const auto& workload = SharedWorkload();
  util::ThreadPool pool(4);
  const auto features = distance::ExtractAllFeatures(
      workload.corpus.db, feature_options, &pool);
  distance::DatasetSpec spec;
  spec.num_training_pairs = Scaled(1000000, 20000);
  spec.num_testing_pairs = Scaled(10000, 2000);
  const auto data = BuildDatasets(workload.corpus, features, spec,
                                  pairwise_options);
  const auto labels = LabelsOf(data.test);
  core::FastKnnOptions options;
  options.k = 9;
  options.num_clusters = 32;
  core::FastKnnClassifier classifier(options);
  classifier.Fit(data.train.pairs, &pool);
  return eval::Aupr(classifier.ScoreAllSpark(ctx, data.test.pairs),
                    labels);
}

void AblationMissingPolicy(minispark::SparkContext* ctx) {
  eval::PrintSection(
      &std::cout,
      "A5: missing-value policy — literal comparison vs neutral 0.5");
  eval::TablePrinter table(&std::cout, {"missing policy", "AUPR"});
  for (auto [policy, name] :
       {std::pair{distance::MissingPolicy::kCompareLiterally,
                  "literal (missing==missing agrees)"},
        std::pair{distance::MissingPolicy::kNeutral,
                  "neutral 0.5 contribution"}}) {
    distance::PairwiseOptions pairwise;
    pairwise.missing_policy = policy;
    table.AddRow(
        {name, eval::TablePrinter::Num(AuprWithOptions(ctx, {}, pairwise),
                                       3)});
  }
  table.Print();
}

void AblationShingles(minispark::SparkContext* ctx) {
  eval::PrintSection(
      &std::cout,
      "A6: drug/ADR field comparison — whole entries vs 3-gram shingles");
  eval::TablePrinter table(&std::cout, {"string-field tokens", "AUPR"});
  for (auto [shingles, name] :
       {std::pair{size_t{0}, "whole list entries (paper)"},
        std::pair{size_t{3}, "character 3-gram shingles"}}) {
    distance::FeatureOptions feature_options;
    feature_options.string_field_shingles = shingles;
    table.AddRow({name, eval::TablePrinter::Num(
                            AuprWithOptions(ctx, feature_options, {}), 3)});
  }
  table.Print();
}

void AblationTextPipeline(minispark::SparkContext* ctx) {
  eval::PrintSection(&std::cout,
                     "A4: free-text NLP pipeline on/off (Section 4.2)");
  const auto& workload = SharedWorkload();
  eval::TablePrinter table(&std::cout, {"text processing", "AUPR"});
  for (auto [process, name] :
       {std::pair{true, "tokenize+stopword+stem (paper)"},
        std::pair{false, "raw character shingles off (no stem/stop)"}}) {
    distance::FeatureOptions feature_options;
    feature_options.text.remove_stopwords = process;
    feature_options.text.stem = process;
    util::ThreadPool pool(4);
    const auto features = distance::ExtractAllFeatures(
        workload.corpus.db, feature_options, &pool);
    distance::DatasetSpec spec;
    spec.num_training_pairs = Scaled(1000000, 20000);
    spec.num_testing_pairs = Scaled(10000, 2000);
    const auto data = BuildDatasets(workload.corpus, features, spec);
    const auto labels = LabelsOf(data.test);
    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = 32;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &pool);
    const auto scores = classifier.ScoreAllSpark(ctx, data.test.pairs);
    table.AddRow({name,
                  eval::TablePrinter::Num(eval::Aupr(scores, labels), 3)});
  }
  table.Print();
}

int Main() {
  PrintBanner("bench_ablations", "design-choice ablations (DESIGN.md §6)");
  const auto data =
      MakeDatasets(Scaled(2000000, 20000), Scaled(10000, 2000));
  minispark::SparkContext ctx({.num_executors = 4});
  AblationPruning(data, &ctx);
  AblationVote(data, &ctx);
  AblationPartitioning(data, &ctx);
  AblationTextPipeline(&ctx);
  AblationMissingPolicy(&ctx);
  AblationShingles(&ctx);
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
