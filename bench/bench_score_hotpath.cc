// Gate bench for the scoring hot path (ISSUE 2 tentpole): single-thread
// records/sec and mean stage-2 cells searched per query, new path vs the
// pre-PR path.
//
// The "legacy" scorer below reproduces, through the public API, exactly
// what FastKnnClassifier::Classify did before the overhaul: two index-
// base vectors rebuilt per call, allocating BruteForceKnn/MergeNeighbors
// per stage, and a one-shot stage-2 cell selection against the stale
// stage-1 k-th distance. The gates:
//   * >= 1.3x single-thread scoring throughput (new ScoreAll vs legacy),
//   * mean stage-2 cells searched strictly decreases with incremental
//     k-th tightening (pruning on),
//   * exact mode (early_exit_all_negative = false) scores identical to
//     ml::KnnClassifier brute force.
// The exactness and cells gates fail the process (they are deterministic
// at any scale); the throughput gate prints PASS/FAIL and fails the
// process only when ADRDEDUP_BENCH_STRICT=1, so timing noise on tiny
// smoke runs cannot flake CI.
#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "distance/simd/dispatch.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "util/stopwatch.h"

namespace adrdedup::bench {
namespace {

using core::FastKnnClassifier;
using core::FastKnnOptions;
using distance::DistanceVector;
using distance::LabeledPair;
using ml::Neighbor;

// Pre-PR Classify, bit-for-bit: per-call allocations and the stale-kth
// one-shot stage-2 selection. Also reports the cells it searched.
double LegacyScore(const FastKnnClassifier& classifier,
                   const DistanceVector& query, uint64_t* cells_searched) {
  const FastKnnOptions& options = classifier.options();
  const size_t k = options.k;
  const size_t home = ml::NearestCenter(query, classifier.centers());

  std::vector<uint32_t> bases(classifier.num_partitions(), 0);
  {
    uint32_t running = 0;
    for (size_t p = 0; p < classifier.num_partitions(); ++p) {
      bases[p] = running;
      running += static_cast<uint32_t>(classifier.partition(p).size());
    }
  }
  uint32_t positive_base = 0;
  for (size_t p = 0; p < classifier.num_partitions(); ++p) {
    positive_base += static_cast<uint32_t>(classifier.partition(p).size());
  }

  std::vector<Neighbor> merged =
      ml::BruteForceKnn(query, classifier.partition(home), k);
  for (Neighbor& n : merged) n.index += bases[home];

  std::vector<Neighbor> positive_neighbors =
      ml::BruteForceKnn(query, classifier.positives(), k);
  for (Neighbor& n : positive_neighbors) n.index += positive_base;
  const double nearest_positive =
      positive_neighbors.empty() ? std::numeric_limits<double>::infinity()
                                 : positive_neighbors.front().distance;
  merged = ml::MergeNeighbors(merged, positive_neighbors, k);

  const double kth = merged.size() < k
                         ? std::numeric_limits<double>::infinity()
                         : merged.back().distance;

  const auto score_of = [&](const std::vector<Neighbor>& neighbors) {
    return options.vote == ml::KnnVote::kInverseDistance
               ? ml::InverseDistanceScore(neighbors, options.min_distance,
                                          options.positive_weight)
               : ml::MajorityVoteScore(neighbors);
  };

  if (options.early_exit_all_negative && kth <= nearest_positive) {
    const bool any_positive =
        std::any_of(merged.begin(), merged.end(),
                    [](const Neighbor& n) { return n.label > 0; });
    if (!any_positive) return score_of(merged);
  }

  std::vector<size_t> extra;
  if (options.prune_with_hyperplanes) {
    extra = classifier.SelectAdditionalPartitions(query, home, kth);
  } else {
    for (size_t j = 0; j < classifier.num_partitions(); ++j) {
      if (j != home && !classifier.partition(j).empty()) extra.push_back(j);
    }
  }
  *cells_searched += extra.size();
  for (size_t j : extra) {
    std::vector<Neighbor> cell =
        ml::BruteForceKnn(query, classifier.partition(j), k);
    for (Neighbor& n : cell) n.index += bases[j];
    merged = ml::MergeNeighbors(merged, cell, k);
  }
  return score_of(merged);
}

int Run() {
  PrintBanner("score-hotpath",
              "ISSUE 2 gate: allocation-free, incrementally-pruned Classify");
  const bool strict = [] {
    const char* env = std::getenv("ADRDEDUP_BENCH_STRICT");
    return env != nullptr && std::string(env) == "1";
  }();

  const size_t train_pairs = Scaled(60000, 2000);
  const size_t test_pairs = Scaled(20000, 500);
  const auto datasets = MakeDatasets(train_pairs, test_pairs);

  FastKnnOptions options;
  options.num_clusters = 32;
  FastKnnClassifier classifier(options);
  classifier.Fit(datasets.train.pairs);
  std::cout << "train pairs: " << datasets.train.pairs.size()
            << " (positives: " << classifier.positives().size()
            << "), queries: " << datasets.test.pairs.size() << "\n";

  const auto& queries = datasets.test.pairs;
  bool failed = false;

  // --- Gate 1: single-thread throughput, new ScoreAll vs legacy. ---
  // One warmup pass each, then timed passes over the same queries.
  (void)classifier.ScoreAll(queries);
  util::Stopwatch new_watch;
  const auto new_scores = classifier.ScoreAll(queries);
  const double new_seconds = new_watch.ElapsedSeconds();

  uint64_t warmup_cells = 0;
  for (const auto& q : queries) {
    (void)LegacyScore(classifier, q.vector, &warmup_cells);
  }
  uint64_t legacy_cells = 0;
  util::Stopwatch legacy_watch;
  std::vector<double> legacy_scores;
  legacy_scores.reserve(queries.size());
  for (const auto& q : queries) {
    legacy_scores.push_back(LegacyScore(classifier, q.vector, &legacy_cells));
  }
  const double legacy_seconds = legacy_watch.ElapsedSeconds();

  const double new_rps = static_cast<double>(queries.size()) / new_seconds;
  const double legacy_rps =
      static_cast<double>(queries.size()) / legacy_seconds;
  const double speedup = new_rps / legacy_rps;
  eval::TablePrinter throughput(&std::cout,
                                {"path", "records/sec", "speedup"});
  throughput.set_export_name("score_hotpath_throughput");
  throughput.AddRow(
      {"legacy (pre-PR)", eval::TablePrinter::Num(legacy_rps, 0), "1.00"});
  throughput.AddRow({"scratch + SoA + incremental",
                     eval::TablePrinter::Num(new_rps, 0),
                     eval::TablePrinter::Num(speedup, 2)});
  throughput.Print();
  const bool throughput_ok = speedup >= 1.3;
  std::cout << "GATE throughput >= 1.3x: "
            << (throughput_ok ? "PASS" : "FAIL") << " (" << speedup << "x)"
            << std::endl;
  if (!throughput_ok && strict) failed = true;

  // New and legacy paths must score identically (same arithmetic, same
  // pruning bound — incremental tightening is lossless).
  for (size_t i = 0; i < queries.size(); ++i) {
    if (new_scores[i] != legacy_scores[i]) {
      std::cout << "GATE legacy parity: FAIL at query " << i << std::endl;
      failed = true;
      break;
    }
  }

  // --- Gate 2: mean stage-2 cells searched per query, pruning on. ---
  // Measured in exact mode so every query reaches stage 2.
  FastKnnOptions exact_options = options;
  exact_options.early_exit_all_negative = false;
  FastKnnClassifier exact(exact_options);
  exact.Fit(datasets.train.pairs);
  exact.stats().Reset();
  const auto exact_scores = exact.ScoreAll(queries);
  const auto stats = exact.stats().Snapshot();
  uint64_t one_shot_cells = 0;
  for (const auto& q : queries) {
    (void)LegacyScore(exact, q.vector, &one_shot_cells);
  }
  const double mean_incremental =
      static_cast<double>(stats.additional_clusters_checked) /
      static_cast<double>(queries.size());
  const double mean_one_shot = static_cast<double>(one_shot_cells) /
                               static_cast<double>(queries.size());
  eval::TablePrinter cells(&std::cout,
                           {"selection", "mean stage-2 cells/query"});
  cells.set_export_name("score_hotpath_cells");
  cells.AddRow(
      {"one-shot stale kth", eval::TablePrinter::Num(mean_one_shot, 3)});
  cells.AddRow({"incremental tightening",
                eval::TablePrinter::Num(mean_incremental, 3)});
  cells.Print();
  const bool cells_ok =
      stats.additional_clusters_checked < one_shot_cells;
  std::cout << "GATE cells searched strictly decreases: "
            << (cells_ok ? "PASS" : "FAIL") << std::endl;
  if (!cells_ok) failed = true;

  // --- Gate 3: exact mode matches ml::KnnClassifier brute force. ---
  // The brute-force reference is fitted on the training set reordered to
  // the classifier's global id space (negatives in partition order, then
  // positives): the corpus contains duplicate vectors, and at the k-th
  // boundary ties break by index, so matching the id order is what makes
  // bit-for-bit score equality the right gate.
  std::vector<LabeledPair> reordered;
  reordered.reserve(datasets.train.pairs.size());
  for (size_t p = 0; p < exact.num_partitions(); ++p) {
    const auto& cell = exact.partition(p);
    reordered.insert(reordered.end(), cell.begin(), cell.end());
  }
  reordered.insert(reordered.end(), exact.positives().begin(),
                   exact.positives().end());
  ml::KnnClassifier brute(ml::KnnOptions{.k = options.k});
  brute.Fit(reordered);
  const size_t parity_checks = std::min<size_t>(queries.size(), 500);
  bool exact_ok = true;
  for (size_t i = 0; i < parity_checks; ++i) {
    if (exact_scores[i] != brute.Score(queries[i].vector)) {
      exact_ok = false;
      std::cout << "GATE exactness: FAIL at query " << i << std::endl;
      break;
    }
  }
  std::cout << "GATE exact mode == brute force (" << parity_checks
            << " queries): " << (exact_ok ? "PASS" : "FAIL") << std::endl;
  if (!exact_ok) failed = true;

  // --- Gate 4: SIMD dispatch parity over the full scoring path (hard).
  // ScoreAll re-run under forced-scalar and forced-AVX2 dispatch must
  // produce bit-identical scores — and therefore identical Eq. 6
  // detections — because the batched kernel re-verifies every prefilter
  // survivor with the exact scalar arithmetic. Deterministic at any
  // scale.
  namespace simd = distance::simd;
  {
    std::vector<double> forced_scalar;
    {
      simd::ScopedSimdOverride level(simd::Level::kScalar);
      forced_scalar = classifier.ScoreAll(queries);
    }
    bool parity = true;
    if (simd::CpuHasAvx2Fma()) {
      std::vector<double> forced_simd;
      {
        simd::ScopedSimdOverride level(simd::Level::kAvx2Fma);
        forced_simd = classifier.ScoreAll(queries);
      }
      parity = forced_scalar.size() == forced_simd.size();
      for (size_t i = 0; parity && i < forced_scalar.size(); ++i) {
        parity = forced_scalar[i] == forced_simd[i];
      }
      std::cout << "GATE scalar vs avx2+fma ScoreAll bit-identical ("
                << queries.size()
                << " queries): " << (parity ? "PASS" : "FAIL") << std::endl;
    } else {
      std::cout << "GATE scalar vs avx2+fma ScoreAll: SKIP (CPU lacks "
                   "AVX2/FMA; scalar oracle is the only path)"
                << std::endl;
    }
    if (!parity) failed = true;
  }

  // --- Gate 5: batched sweep vs 8 single-query sweeps (strict-only
  // timing; heap parity stays a hard gate). ---
  // The raw kernel comparison behind ScoreBatch: one SoaKnnSweepBatch
  // pass with 8 queries over a SoA block, against 8 SoaKnnSweep passes.
  // The batch amortizes every column load across the queries (and runs
  // the AVX2 prefilter), so it must be strictly faster.
  if (simd::CpuHasAvx2Fma()) {
    const size_t n = datasets.train.pairs.size();
    std::vector<double> coords(distance::kDistanceDims * n);
    std::vector<int8_t> labels(n);
    for (size_t i = 0; i < n; ++i) {
      const auto& pair = datasets.train.pairs[i];
      labels[i] = pair.label;
      for (size_t d = 0; d < distance::kDistanceDims; ++d) {
        coords[d * n + i] = pair.vector[d];
      }
    }
    constexpr size_t kBatch = ml::kSoaBatchMaxQueries;
    const DistanceVector* batch_queries[kBatch];
    for (size_t q = 0; q < kBatch; ++q) {
      batch_queries[q] = &queries[q % queries.size()].vector;
    }
    const size_t k = options.k;
    const size_t reps = Scaled(200, 10);
    std::vector<Neighbor> single_heaps[kBatch];
    std::vector<Neighbor> batch_heaps[kBatch];
    std::vector<Neighbor>* heap_ptrs[kBatch];
    for (size_t q = 0; q < kBatch; ++q) heap_ptrs[q] = &batch_heaps[q];

    const auto run_single = [&] {
      for (size_t q = 0; q < kBatch; ++q) {
        single_heaps[q].clear();
        ml::SoaKnnSweep(*batch_queries[q], coords.data(), n, 0, n,
                        labels.data(), k, &single_heaps[q]);
      }
    };
    const auto run_batch = [&] {
      for (size_t q = 0; q < kBatch; ++q) batch_heaps[q].clear();
      ml::SoaKnnSweepBatch(batch_queries, kBatch, coords.data(), n, 0, n,
                           labels.data(), k, heap_ptrs);
    };

    simd::ScopedSimdOverride level(simd::Level::kAvx2Fma);
    run_single();  // warmup
    util::Stopwatch single_watch;
    for (size_t rep = 0; rep < reps; ++rep) run_single();
    const double single_seconds = single_watch.ElapsedSeconds();
    run_batch();  // warmup
    util::Stopwatch batch_watch;
    for (size_t rep = 0; rep < reps; ++rep) run_batch();
    const double batch_seconds = batch_watch.ElapsedSeconds();

    bool heap_parity = true;
    for (size_t q = 0; heap_parity && q < kBatch; ++q) {
      std::sort(single_heaps[q].begin(), single_heaps[q].end(),
                ml::NeighborLess);
      std::sort(batch_heaps[q].begin(), batch_heaps[q].end(),
                ml::NeighborLess);
      heap_parity = single_heaps[q].size() == batch_heaps[q].size();
      for (size_t i = 0; heap_parity && i < single_heaps[q].size(); ++i) {
        heap_parity = single_heaps[q][i].distance ==
                          batch_heaps[q][i].distance &&
                      single_heaps[q][i].index == batch_heaps[q][i].index &&
                      single_heaps[q][i].label == batch_heaps[q][i].label;
      }
    }
    if (!heap_parity) {
      std::cout << "GATE batched sweep heap parity: FAIL" << std::endl;
      failed = true;
    }

    const double sweep_speedup = single_seconds / batch_seconds;
    eval::TablePrinter sweeps(&std::cout, {"sweep", "secs/rep", "speedup"});
    sweeps.set_export_name("score_hotpath_batched_sweep");
    sweeps.AddRow({"8 single-query sweeps",
                   eval::TablePrinter::Num(single_seconds / reps, 6), "1.00"});
    sweeps.AddRow({"1 batched 8-query sweep",
                   eval::TablePrinter::Num(batch_seconds / reps, 6),
                   eval::TablePrinter::Num(sweep_speedup, 2)});
    sweeps.Print();
    const bool batch_ok = batch_seconds < single_seconds;
    std::cout << "GATE batched sweep strictly faster than 8 singles: "
              << (batch_ok ? "PASS" : "FAIL") << " (" << sweep_speedup
              << "x)" << std::endl;
    if (!batch_ok && strict) failed = true;
  } else {
    std::cout << "GATE batched sweep vs 8 singles: SKIP (CPU lacks "
                 "AVX2/FMA)"
              << std::endl;
  }

  return failed ? 1 : 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Run(); }
