// Serving-mode throughput: the micro-batched ScreeningService against
// one-request-per-job screening.
//
// Three configurations per executor count, streaming the newest reports
// of the Table-3 corpus:
//
//  * "one-req-per-job": the pre-serve integration — a plain DedupPipeline
//    call per report, rebuilding the blocking index from the full
//    database on every request (the batch candidate generator knows
//    nothing about which reports are new).
//  * "serve batch=1": the ScreeningService with micro-batching disabled.
//    Isolates the incremental-index win: candidates come from posting
//    lists updated in place, but every request is still its own pair of
//    minispark jobs.
//  * "serve batched": the full serving stack — adaptive micro-batches
//    coalesce concurrent requests into one distance job + one scoring
//    job, amortizing job-launch overhead.
//
// Acceptance: "serve batched" QPS >= 3x "one-req-per-job" QPS at
// 4 executors, with p99 latency reported for every row.
#include <algorithm>
#include <iostream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "core/dedup_pipeline.h"
#include "eval/table_printer.h"
#include "serve/screening_service.h"
#include "util/random.h"

namespace adrdedup::bench {
namespace {

// Enough concurrent producers to fill max_batch-sized micro-batches; the
// adaptive linger then exits as soon as a batch fills instead of waiting
// out the full window.
constexpr size_t kProducers = 32;
constexpr size_t kMaxBatch = 32;
constexpr size_t kExecutorSweep[] = {1, 2, 4};

core::DedupPipelineOptions PipelineOptions() {
  core::DedupPipelineOptions options;
  options.use_blocking = true;
  options.blocking.keys = {blocking::BlockingKey::kDrugToken,
                           blocking::BlockingKey::kAdrToken};
  // Serving-grade blocking: cap block sizes so a popular drug does not
  // hand every request hundreds of candidates.
  options.blocking.max_block_size = 64;
  options.theta = 1.0;
  return options;
}

struct RunStats {
  double qps = 0.0;
  double mean_batch = 0.0;
  serve::LatencyRecorder::Summary latency;
};

// The pre-serve baseline: each report is its own ProcessNewReports call
// on a batch-mode pipeline (auto_refit off so the comparison measures
// screening, not k-means refits — the batch default would be worse).
RunStats RunOneRequestPerJob(
    const std::vector<distance::LabeledPair>& labels,
    const std::vector<report::AdrReport>& bootstrap,
    const std::vector<report::AdrReport>& stream, size_t executors) {
  minispark::SparkContext ctx({.num_executors = executors});
  core::DedupPipelineOptions options = PipelineOptions();
  options.auto_refit = false;
  core::DedupPipeline pipeline(&ctx, options);
  pipeline.BootstrapDatabase(bootstrap);
  pipeline.SeedLabels(labels);
  pipeline.ProcessNewReports({});  // fit once up front

  // The per-request cost here is dominated by the full block rebuild and
  // is constant per call, so a subsample of the stream measures it fine
  // (all 640+ requests would add minutes of bench wall time for the same
  // number).
  const size_t sample = std::min<size_t>(stream.size(), 96);
  serve::LatencyRecorder latency;
  util::Stopwatch wall;
  for (size_t i = 0; i < sample; ++i) {
    util::Stopwatch request;
    (void)pipeline.ProcessNewReports({stream[i]});
    latency.Record(request.ElapsedMillis());
  }
  RunStats stats;
  stats.qps = static_cast<double>(sample) / wall.ElapsedSeconds();
  stats.mean_batch = 1.0;
  stats.latency = latency.Summarize();
  return stats;
}

RunStats RunService(const std::vector<distance::LabeledPair>& labels,
                    const std::vector<report::AdrReport>& bootstrap,
                    const std::vector<report::AdrReport>& stream,
                    size_t executors, size_t max_batch, double linger_ms) {
  minispark::SparkContext ctx({.num_executors = executors});
  serve::ScreeningServiceOptions options;
  options.pipeline = PipelineOptions();
  options.max_batch = max_batch;
  options.max_linger_ms = linger_ms;
  serve::ScreeningService service(&ctx, options);
  service.Bootstrap(bootstrap);
  service.SeedLabels(labels);
  service.Start();

  util::Stopwatch wall;
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = p; i < stream.size(); i += kProducers) {
        (void)service.Screen(stream[i]);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  const double seconds = wall.ElapsedSeconds();

  RunStats stats;
  stats.qps = static_cast<double>(stream.size()) / seconds;
  const uint64_t batches = service.metrics().batches_dispatched();
  stats.mean_batch =
      batches == 0
          ? 0.0
          : static_cast<double>(service.metrics().requests_completed()) /
                static_cast<double>(batches);
  stats.latency = service.metrics().TotalLatency();
  service.Stop();
  return stats;
}

int Main() {
  PrintBanner("bench_serve_throughput",
              "serving mode: micro-batching vs one-request-per-job");
  const auto& workload = SharedWorkload();
  const size_t stream_size = Scaled(2000, 640);
  const size_t bootstrap_size = workload.corpus.db.size() - stream_size;

  std::vector<report::AdrReport> bootstrap;
  std::vector<report::AdrReport> stream;
  for (size_t i = 0; i < workload.corpus.db.size(); ++i) {
    auto& dest = i < bootstrap_size ? bootstrap : stream;
    dest.push_back(workload.corpus.db.Get(static_cast<report::ReportId>(i)));
  }

  // Training set: ground-truth duplicates inside the bootstrapped prefix
  // plus uniformly sampled negatives (the adrdedup_detect recipe).
  std::vector<distance::LabeledPair> labels;
  std::unordered_set<uint64_t> keys;
  for (auto [a, b] : workload.corpus.duplicate_pairs) {
    if (a >= bootstrap_size || b >= bootstrap_size) continue;
    distance::LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    pair.label = +1;
    pair.vector = ComputeDistanceVector(workload.features[pair.pair.a],
                                        workload.features[pair.pair.b]);
    if (keys.insert(PairKey(pair.pair)).second) labels.push_back(pair);
  }
  const size_t negatives = Scaled(20000, 2000);
  util::Rng rng(7);
  const auto n = static_cast<uint32_t>(bootstrap_size);
  while (labels.size() < workload.corpus.duplicate_pairs.size() + negatives) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a == b) continue;
    distance::LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    if (!keys.insert(PairKey(pair.pair)).second) continue;
    pair.label = -1;
    pair.vector = ComputeDistanceVector(workload.features[pair.pair.a],
                                        workload.features[pair.pair.b]);
    labels.push_back(pair);
  }
  std::cout << "bootstrap=" << bootstrap_size << " stream=" << stream_size
            << " producers=" << kProducers << " labels=" << labels.size()
            << "\n\n";

  eval::TablePrinter table(
      &std::cout,
      {"executors", "mode", "QPS", "mean batch", "p50 ms", "p95 ms",
       "p99 ms"});
  double naive_qps_at_4 = 0.0;
  double batched_qps_at_4 = 0.0;
  for (size_t executors : kExecutorSweep) {
    const RunStats naive =
        RunOneRequestPerJob(labels, bootstrap, stream, executors);
    const RunStats single = RunService(labels, bootstrap, stream, executors,
                                       /*max_batch=*/1, /*linger_ms=*/0.0);
    const RunStats batched = RunService(labels, bootstrap, stream, executors,
                                        kMaxBatch, /*linger_ms=*/2.0);
    if (executors == 4) {
      naive_qps_at_4 = naive.qps;
      batched_qps_at_4 = batched.qps;
    }
    const struct {
      const char* name;
      const RunStats* stats;
    } rows[] = {{"one-req-per-job", &naive},
                {"serve batch=1", &single},
                {"serve batched", &batched}};
    for (const auto& row : rows) {
      table.AddRow({std::to_string(executors), row.name,
                    eval::TablePrinter::Num(row.stats->qps, 1),
                    eval::TablePrinter::Num(row.stats->mean_batch, 2),
                    eval::TablePrinter::Num(row.stats->latency.p50_ms, 3),
                    eval::TablePrinter::Num(row.stats->latency.p95_ms, 3),
                    eval::TablePrinter::Num(row.stats->latency.p99_ms, 3)});
    }
  }
  table.Print();

  const double speedup =
      naive_qps_at_4 > 0.0 ? batched_qps_at_4 / naive_qps_at_4 : 0.0;
  std::cout << "\nmicro-batched service speedup over one-request-per-job "
               "at 4 executors: "
            << eval::TablePrinter::Num(speedup, 2) << "x (acceptance: >= 3x)"
            << (speedup >= 3.0 ? " PASS" : " FAIL") << "\n"
            << "(serve batch=1 vs serve batched isolates the micro-batching "
               "amortization; one-req-per-job vs serve batch=1 isolates the "
               "incremental blocking index)\n";
  return speedup >= 3.0 ? 0 : 1;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
