// Benches for the post-paper extensions:
//   E1. Blocking methods — candidate-set reduction vs duplicate recall
//       (key blocking, sorted neighbourhood, prefix-filtered token
//       index) against the quadratic pair universe.
//   E2. Baseline round-up — AUPR of Fast kNN vs SVM vs Fellegi-Sunter
//       vs class-weighted kNN on one dataset.
//   E3. Active learning — AUPR vs labels queried, uncertainty vs random.
//   E4. Learned f(theta) — pruning ratio of the learned halo vs the
//       paper's manual grid.
#include <iostream>

#include "bench/bench_common.h"
#include "blocking/blocking.h"
#include "blocking/sorted_neighbourhood.h"
#include "blocking/token_index.h"
#include "core/active_learning.h"
#include "core/fast_knn.h"
#include "core/test_set_pruner.h"
#include "eval/metrics.h"
#include "ml/fellegi_sunter.h"
#include "ml/svm.h"

namespace adrdedup::bench {
namespace {

void BenchBlocking() {
  eval::PrintSection(&std::cout,
                     "E1: candidate generation (10,382-report corpus)");
  const auto& workload = SharedWorkload();
  const auto& features = workload.features;
  eval::TablePrinter table(
      &std::cout, {"method", "candidate pairs", "reduction ratio",
                   "duplicate recall"});

  auto add_row = [&](const std::string& name,
                     const std::vector<distance::ReportPair>& pairs) {
    table.AddRow(
        {name, std::to_string(pairs.size()),
         eval::TablePrinter::Num(
             blocking::ReductionRatio(pairs.size(), features.size()), 4),
         eval::TablePrinter::Num(
             blocking::PairCompleteness(pairs,
                                        workload.corpus.duplicate_pairs),
             3)});
  };

  blocking::BlockingOptions drug_only;
  drug_only.keys = {blocking::BlockingKey::kDrugToken};
  add_row("key blocking: drug",
          GenerateCandidates(features, drug_only).pairs);

  blocking::BlockingOptions drug_adr;
  drug_adr.keys = {blocking::BlockingKey::kDrugToken,
                   blocking::BlockingKey::kAdrToken};
  add_row("key blocking: drug+adr",
          GenerateCandidates(features, drug_adr).pairs);

  blocking::SortedNeighbourhoodOptions snm;
  snm.window = 10;
  snm.passes = 3;
  add_row("sorted neighbourhood w=10 p=3",
          SortedNeighbourhoodCandidates(features, snm));

  blocking::TokenIndexOptions token_index;
  token_index.jaccard_threshold = 0.5;
  add_row("token prefix index t=0.5",
          DescriptionOverlapCandidates(features, token_index).pairs);

  table.Print();
  const double universe = 0.5 * static_cast<double>(features.size()) *
                          static_cast<double>(features.size() - 1);
  std::cout << "full pair universe: "
            << static_cast<uint64_t>(universe) << " pairs\n";
}

void BenchBaselines(const distance::LabeledPairDatasets& data,
                    minispark::SparkContext* ctx) {
  eval::PrintSection(&std::cout, "E2: baseline round-up (AUPR)");
  const auto labels = LabelsOf(data.test);
  eval::TablePrinter table(&std::cout, {"classifier", "AUPR"});

  core::FastKnnOptions knn_options;
  knn_options.k = 9;
  knn_options.num_clusters = 32;
  core::FastKnnClassifier knn(knn_options);
  knn.Fit(data.train.pairs, &ctx->pool());
  table.AddRow({"Fast kNN (paper)",
                eval::TablePrinter::Num(
                    eval::Aupr(knn.ScoreAllSpark(ctx, data.test.pairs),
                               labels),
                    3)});

  core::FastKnnOptions weighted_options = knn_options;
  weighted_options.positive_weight = 5.0;
  core::FastKnnClassifier weighted(weighted_options);
  weighted.Fit(data.train.pairs, &ctx->pool());
  table.AddRow({"Fast kNN, class weight 5 [14]",
                eval::TablePrinter::Num(
                    eval::Aupr(weighted.ScoreAllSpark(ctx, data.test.pairs),
                               labels),
                    3)});

  ml::SvmClassifier svm(ml::SvmOptions{});
  svm.Fit(data.train.pairs);
  table.AddRow({"linear SVM (averaged Pegasos)",
                eval::TablePrinter::Num(
                    eval::Aupr(svm.ScoreAll(data.test.pairs), labels), 3)});

  ml::FellegiSunterClassifier fs(ml::FellegiSunterOptions{});
  fs.Fit(data.train.pairs);
  table.AddRow({"Fellegi-Sunter [16]",
                eval::TablePrinter::Num(
                    eval::Aupr(fs.ScoreAll(data.test.pairs), labels), 3)});
  table.Print();
}

void BenchActiveLearning(const distance::LabeledPairDatasets& data) {
  eval::PrintSection(&std::cout,
                     "E3: active learning — AUPR vs labels queried [20]");
  const auto labels = LabelsOf(data.test);
  eval::TablePrinter table(
      &std::cout,
      {"labels", "uncertainty AUPR", "random AUPR"});

  auto curve = [&](core::QueryStrategy strategy) {
    std::vector<std::pair<size_t, double>> points;
    core::ActiveLearningOptions options;
    options.strategy = strategy;
    options.initial_labels = 400;
    options.batch_size = 100;
    options.rounds = 5;
    options.knn.num_clusters = 16;
    RunActiveLearning(
        data.train.pairs,
        [](const distance::LabeledPair& pair) { return pair.label; },
        options,
        [&](size_t, size_t labels_used,
            const core::FastKnnClassifier& classifier) {
          std::vector<double> scores;
          for (const auto& pair : data.test.pairs) {
            scores.push_back(classifier.Score(pair.vector));
          }
          points.emplace_back(labels_used, eval::Aupr(scores, labels));
        });
    return points;
  };

  const auto uncertain = curve(core::QueryStrategy::kUncertainty);
  const auto random = curve(core::QueryStrategy::kRandom);
  for (size_t i = 0; i < uncertain.size(); ++i) {
    table.AddRow({std::to_string(uncertain[i].first),
                  eval::TablePrinter::Num(uncertain[i].second, 3),
                  eval::TablePrinter::Num(random[i].second, 3)});
  }
  table.Print();
}

void BenchLearnedFTheta(const distance::LabeledPairDatasets& data) {
  eval::PrintSection(
      &std::cout, "E4: learned f(theta) vs manual grid (paper future work)");
  std::vector<distance::LabeledPair> train_positives;
  for (const auto& pair : data.train.pairs) {
    if (pair.is_positive()) train_positives.push_back(pair);
  }
  // Hold out a third of positives to learn the halo from.
  const size_t held = train_positives.size() / 3;
  std::vector<distance::LabeledPair> held_out(
      train_positives.end() - static_cast<ptrdiff_t>(held),
      train_positives.end());
  train_positives.resize(train_positives.size() - held);

  core::TestSetPruner pruner(core::TestSetPrunerOptions{.num_clusters = 8});
  pruner.Fit(train_positives);
  const double learned = pruner.LearnFTheta(held_out, 0.05);

  eval::TablePrinter table(
      &std::cout,
      {"f(theta)", "kept fraction", "true duplicates kept"});
  auto add_row = [&](const std::string& name, double f_theta) {
    const auto result = pruner.Prune(data.test.pairs, f_theta);
    size_t positives_kept = 0;
    for (size_t index : result.kept) {
      if (data.test.pairs[index].is_positive()) ++positives_kept;
    }
    table.AddRow({name, eval::TablePrinter::Num(result.KeptRatio(), 3),
                  std::to_string(positives_kept) + "/" +
                      std::to_string(data.test.CountPositive())});
  };
  add_row("learned (" + eval::TablePrinter::Num(learned, 3) + ")", learned);
  for (double manual : {0.3, 0.5, 0.7, 0.9}) {
    add_row(eval::TablePrinter::Num(manual, 1), manual);
  }
  table.Print();
}

int Main() {
  PrintBanner("bench_extensions",
              "post-paper extensions (blocking, baselines, active "
              "learning, learned pruning)");
  const auto data =
      MakeDatasets(Scaled(1000000, 20000), Scaled(20000, 4000));
  minispark::SparkContext ctx({.num_executors = 4});
  BenchBlocking();
  BenchBaselines(data, &ctx);
  BenchActiveLearning(data);
  BenchLearnedFTheta(data);
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
