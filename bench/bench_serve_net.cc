// Socket front-end load test: the epoll NetServer against direct
// in-process Screen() calls, with an open-loop (Poisson-arrival) load
// generator over many concurrent loopback connections.
//
// Four measured configurations over the Table-3 corpus stream:
//
//  * "direct seq": sequential Screen() calls on an in-process service —
//    the parity baseline; every response is rendered to the stdin
//    path's CSV lines (serve::FormatMatchesCsv).
//  * "net seq": the same stream over one binary-protocol connection to
//    an identically bootstrapped service behind the NetServer. The
//    parity gate requires the detection lines rebuilt from the socket
//    responses to be byte-identical to the direct run's (the binary
//    protocol carries raw doubles, so scores must match bit-exactly).
//  * "open loop": Poisson arrivals at ~2x the sequential service rate,
//    spread over Scaled(1000) concurrent connections (clamped to
//    RLIMIT_NOFILE; every 8th connection speaks HTTP/JSON instead of
//    the binary protocol). Open-loop latency is measured from each
//    request's *scheduled* arrival, so queueing delay is charged even
//    when a sender falls behind (no coordinated omission).
//  * "overload burst": every connection fires its whole share at t=0
//    against the same bounded queue — the queue must fill, and every
//    overflow request must be answered 503/kShed immediately (never
//    hung, never dropped), with the observed shed responses exactly
//    matching the service's requests_shed counter.
//
// Acceptance: parity bytes identical; every open-loop and overload
// request answered (no hangs, no protocol errors); the overload burst
// sheds, with client-observed sheds == the requests_shed delta.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "eval/table_printer.h"
#include "report/field.h"
#include "serve/net/frame.h"
#include "serve/net/server.h"
#include "serve/request_codec.h"
#include "serve/screening_service.h"
#include "util/json.h"
#include "util/random.h"

namespace adrdedup::bench {
namespace {

using serve::net::DecodeFrame;
using serve::net::DecodeScreenResponse;
using serve::net::DecodeStatus;
using serve::net::EncodeScreenRequest;
using serve::net::Frame;
using serve::net::FrameType;
using serve::net::NetServer;
using serve::net::NetServerOptions;
using serve::net::ScreenRequestBody;
using serve::net::ScreenResponseBody;
using serve::net::ScreenStatus;

constexpr size_t kMaxBatch = 32;
constexpr size_t kQueueCapacity = 256;
// Every 8th open-loop connection speaks HTTP/JSON instead of binary.
constexpr size_t kHttpStride = 8;

core::DedupPipelineOptions PipelineOptions() {
  core::DedupPipelineOptions options;
  options.use_blocking = true;
  options.blocking.keys = {blocking::BlockingKey::kDrugToken,
                           blocking::BlockingKey::kAdrToken};
  options.blocking.max_block_size = 64;
  // Eq. 6 threshold at 0 (the serving-test recipe): the parity gate
  // needs actual detection lines to compare, not two empty documents.
  options.theta = 0.0;
  options.f_theta = 0.9;
  return options;
}

// Parity depends on the direct and socket services being configured and
// bootstrapped identically; both sides call exactly this.
std::unique_ptr<serve::ScreeningService> MakeService(
    minispark::SparkContext* ctx,
    const std::vector<distance::LabeledPair>& labels,
    const std::vector<report::AdrReport>& bootstrap,
    const std::string& journal_dir = {}) {
  serve::ScreeningServiceOptions options;
  options.pipeline = PipelineOptions();
  options.queue_capacity = kQueueCapacity;
  options.max_batch = kMaxBatch;
  options.max_linger_ms = 2.0;
  if (!journal_dir.empty()) {
    options.journal_dir = journal_dir;
    options.fsync_policy = serve::FsyncPolicy::kBatch;
  }
  auto service = std::make_unique<serve::ScreeningService>(ctx, options);
  service->Bootstrap(bootstrap);
  service->SeedLabels(labels);
  if (auto status = service->Start(); !status.ok()) {
    std::cout << "ScreeningService::Start failed: " << status.ToString()
              << "\n";
    return nullptr;
  }
  return service;
}

ScreenRequestBody ToFields(const report::AdrReport& report) {
  ScreenRequestBody fields;
  for (const auto& spec : report::Schema()) {
    const std::string& value = report.Get(spec.id);
    if (!value.empty()) fields.emplace_back(std::string(spec.name), value);
  }
  return fields;
}

std::string BinaryScreenRequest(const report::AdrReport& report) {
  std::string bytes;
  AppendFrame(&bytes, FrameType::kScreenRequest,
              EncodeScreenRequest(ToFields(report)));
  return bytes;
}

std::string HttpScreenRequest(const report::AdrReport& report) {
  std::string body = "{";
  bool first = true;
  for (const auto& [name, value] : ToFields(report)) {
    if (!first) body += ',';
    first = false;
    body += '"' + util::JsonEscape(name) + "\":\"" + util::JsonEscape(value) +
            '"';
  }
  body += '}';
  return "POST /screen HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// ---------------------------------------------------------------------------
// Blocking loopback client (parity phase + health probes)

int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{/*.tv_sec=*/60, /*.tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

bool RecvFrameBlocking(int fd, std::string* buffer, Frame* frame) {
  while (true) {
    size_t consumed = 0;
    std::string error;
    switch (DecodeFrame(*buffer, 64u << 20, frame, &consumed, &error)) {
      case DecodeStatus::kFrame:
        buffer->erase(0, consumed);
        return true;
      case DecodeStatus::kProtocolError:
        return false;
      case DecodeStatus::kNeedMore:
        break;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

std::string RecvHttpBlocking(int fd, std::string* buffer) {
  while (true) {
    const size_t head_end = buffer->find("\r\n\r\n");
    if (head_end != std::string::npos) {
      size_t content_length = 0;
      const size_t marker = buffer->find("Content-Length: ");
      if (marker != std::string::npos && marker < head_end) {
        content_length =
            static_cast<size_t>(std::atoll(buffer->c_str() + marker + 16));
      }
      const size_t total = head_end + 4 + content_length;
      if (buffer->size() >= total) {
        std::string response = buffer->substr(0, total);
        buffer->erase(0, total);
        return response;
      }
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return "";
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Open-loop load generator

struct LoadResult {
  size_t sent = 0;
  size_t answered = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t invalid = 0;
  size_t client_errors = 0;  // socket failures / malformed server bytes
  bool timed_out = false;
  double wall_seconds = 0.0;
  // kOk responses only, measured from the scheduled arrival time.
  std::vector<double> latencies_ms;

  void Merge(const LoadResult& other) {
    sent += other.sent;
    answered += other.answered;
    ok += other.ok;
    shed += other.shed;
    expired += other.expired;
    invalid += other.invalid;
    client_errors += other.client_errors;
    timed_out = timed_out || other.timed_out;
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
  }
};

struct Client {
  int fd = -1;
  bool http = false;
  bool dead = false;
  std::string rx;
  std::string tx;
  std::deque<double> scheduled_ms;  // arrival times of in-flight requests
};

struct Arrival {
  double at_ms = 0.0;
  size_t client = 0;  // worker-local index
  size_t request = 0;  // index into the request-bytes vectors
};

// One worker: owns `clients` exclusively, replays `arrivals` (sorted by
// time) against them, and drains responses until everything in flight is
// answered or `deadline_ms` passes.
LoadResult RunWorker(std::vector<Client> clients,
                     const std::vector<Arrival>& arrivals,
                     const std::vector<std::string>& binary_requests,
                     const std::vector<std::string>& http_requests,
                     std::chrono::steady_clock::time_point start,
                     double deadline_ms) {
  LoadResult result;
  const auto now_ms = [start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  const auto flush = [&](Client* client) {
    while (!client->dead && !client->tx.empty()) {
      const ssize_t n = ::send(client->fd, client->tx.data(),
                               client->tx.size(), MSG_NOSIGNAL);
      if (n > 0) {
        client->tx.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      client->dead = true;
      ++result.client_errors;
    }
  };

  const auto record = [&](Client* client, ScreenStatus status) {
    ++result.answered;
    switch (status) {
      case ScreenStatus::kOk:
        ++result.ok;
        result.latencies_ms.push_back(now_ms() - client->scheduled_ms.front());
        break;
      case ScreenStatus::kShed:
        ++result.shed;
        break;
      case ScreenStatus::kExpired:
        ++result.expired;
        break;
      case ScreenStatus::kInvalid:
        ++result.invalid;
        break;
    }
    client->scheduled_ms.pop_front();
  };

  // Parses every complete response buffered in client->rx. Responses
  // arrive in request order per connection (the server's ordered response
  // slots), so each one pairs with the oldest scheduled arrival.
  const auto parse = [&](Client* client) {
    while (!client->dead) {
      if (client->http) {
        const size_t head_end = client->rx.find("\r\n\r\n");
        if (head_end == std::string::npos) return;
        size_t content_length = 0;
        const size_t marker = client->rx.find("Content-Length: ");
        if (marker != std::string::npos && marker < head_end) {
          content_length = static_cast<size_t>(
              std::atoll(client->rx.c_str() + marker + 16));
        }
        const size_t total = head_end + 4 + content_length;
        if (client->rx.size() < total) return;
        const int code = std::atoi(client->rx.c_str() + 9);
        client->rx.erase(0, total);
        if (client->scheduled_ms.empty()) {
          client->dead = true;
          ++result.client_errors;
          return;
        }
        record(client, code == 200   ? ScreenStatus::kOk
                       : code == 503 ? ScreenStatus::kShed
                       : code == 504 ? ScreenStatus::kExpired
                                     : ScreenStatus::kInvalid);
      } else {
        Frame frame;
        size_t consumed = 0;
        std::string error;
        switch (DecodeFrame(client->rx, 64u << 20, &frame, &consumed,
                            &error)) {
          case DecodeStatus::kNeedMore:
            return;
          case DecodeStatus::kProtocolError:
            client->dead = true;
            ++result.client_errors;
            return;
          case DecodeStatus::kFrame:
            break;
        }
        client->rx.erase(0, consumed);
        ScreenResponseBody body;
        if (frame.type != FrameType::kScreenResponse ||
            !DecodeScreenResponse(frame.payload, &body) ||
            client->scheduled_ms.empty()) {
          client->dead = true;
          ++result.client_errors;
          return;
        }
        record(client, body.status);
      }
    }
  };

  const auto drain = [&](Client* client) {
    while (!client->dead) {
      char chunk[16384];
      const ssize_t n = ::recv(client->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        client->rx.append(chunk, static_cast<size_t>(n));
        parse(client);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      // EOF (or a hard error) with requests still in flight.
      client->dead = true;
      if (!client->scheduled_ms.empty()) ++result.client_errors;
      return;
    }
  };

  size_t next = 0;
  while (true) {
    const double now = now_ms();
    while (next < arrivals.size() && arrivals[next].at_ms <= now) {
      const Arrival& arrival = arrivals[next++];
      Client* client = &clients[arrival.client];
      if (client->dead) {
        ++result.client_errors;
        continue;
      }
      client->tx += client->http ? http_requests[arrival.request]
                                 : binary_requests[arrival.request];
      client->scheduled_ms.push_back(arrival.at_ms);
      ++result.sent;
      flush(client);
    }
    bool outstanding = false;
    for (Client& client : clients) {
      flush(&client);
      drain(&client);
      outstanding = outstanding ||
                    (!client.dead && !client.scheduled_ms.empty());
    }
    if (next >= arrivals.size() && !outstanding) break;
    if (now > deadline_ms) {
      result.timed_out = true;
      break;
    }
    double sleep_ms = 0.5;
    if (next < arrivals.size() && !outstanding) {
      sleep_ms = std::min(50.0, std::max(0.0, arrivals[next].at_ms - now));
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  for (Client& client : clients) ::close(client.fd);
  return result;
}

// Replays `arrival_ms` (sorted offsets; request i goes to connection
// i % conns) against the server, `workers` threads each owning a
// disjoint slice of the connections.
LoadResult RunOpenLoop(uint16_t port, size_t conns, size_t http_stride,
                       const std::vector<double>& arrival_ms,
                       const std::vector<std::string>& binary_requests,
                       const std::vector<std::string>& http_requests,
                       double drain_grace_ms) {
  const size_t workers = std::max<size_t>(1, std::min<size_t>(conns, 16));
  std::vector<std::vector<Client>> worker_clients(workers);
  std::vector<std::vector<size_t>> local_index(workers);
  LoadResult failed;
  for (size_t c = 0; c < conns; ++c) {
    Client client;
    client.fd = ConnectTo(port);
    if (client.fd < 0) {
      ++failed.client_errors;
      continue;
    }
    const int flags = ::fcntl(client.fd, F_GETFL, 0);
    ::fcntl(client.fd, F_SETFL, flags | O_NONBLOCK);
    client.http = http_stride > 0 && c % http_stride == http_stride - 1;
    const size_t w = c % workers;
    local_index[w].push_back(c);
    worker_clients[w].push_back(std::move(client));
  }
  if (failed.client_errors > 0) {
    for (auto& clients : worker_clients) {
      for (Client& client : clients) ::close(client.fd);
    }
    failed.timed_out = true;
    return failed;
  }

  std::vector<std::vector<Arrival>> worker_arrivals(workers);
  for (size_t i = 0; i < arrival_ms.size(); ++i) {
    const size_t c = i % conns;
    const size_t w = c % workers;
    const auto slot = std::find(local_index[w].begin(), local_index[w].end(),
                                c) -
                      local_index[w].begin();
    worker_arrivals[w].push_back(
        {arrival_ms[i], static_cast<size_t>(slot),
         i % binary_requests.size()});
  }

  const double deadline_ms =
      (arrival_ms.empty() ? 0.0 : arrival_ms.back()) + drain_grace_ms;
  const auto start = std::chrono::steady_clock::now();
  std::vector<LoadResult> results(workers);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      results[w] = RunWorker(std::move(worker_clients[w]), worker_arrivals[w],
                             binary_requests, http_requests, start,
                             deadline_ms);
    });
  }
  for (auto& thread : threads) thread.join();

  LoadResult total;
  for (const LoadResult& result : results) total.Merge(result);
  total.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return total;
}

serve::LatencyRecorder::Summary Summarize(const std::vector<double>& ms) {
  serve::LatencyRecorder recorder;
  for (double m : ms) recorder.Record(m);
  return recorder.Summarize();
}

// Raises the fd soft limit toward the hard limit and returns how many
// loopback connections fit: each one costs two fds (client + server end
// live in this process), plus slack for the services and epoll plumbing.
size_t MaxConnectionsByRlimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return 64;
  if (limit.rlim_cur < limit.rlim_max) {
    rlimit raised = limit;
    raised.rlim_cur = limit.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) limit = raised;
  }
  if (limit.rlim_cur <= 128) return 4;
  return static_cast<size_t>((limit.rlim_cur - 128) / 2);
}

int Main() {
  PrintBanner("bench_serve_net",
              "socket front end: parity, open-loop load, overload shedding");
  const auto& workload = SharedWorkload();
  const size_t corpus_size = workload.corpus.db.size();

  // The generator appends every duplicate copy after all originals, so a
  // plain "newest reports" stream would leave the bootstrap without a
  // single positive training pair (and the detector blind). Hold out the
  // newer half of the copy region as the stream — their partners stay
  // bootstrapped, so screening them must produce detections — and pad
  // the stream with the originals just below the copy region.
  const size_t dup_copies = workload.corpus.duplicate_pairs.size();
  const size_t held_out = dup_copies / 2;
  const size_t copy_begin = corpus_size - dup_copies;
  const size_t stream_target = Scaled(2000, 320);
  const size_t extra =
      stream_target > held_out
          ? std::min(stream_target - held_out, copy_begin)
          : 0;
  std::vector<bool> in_bootstrap(corpus_size, true);
  std::vector<size_t> stream_ids;
  for (size_t i = copy_begin - extra; i < copy_begin; ++i) {
    stream_ids.push_back(i);
  }
  for (size_t i = corpus_size - held_out; i < corpus_size; ++i) {
    stream_ids.push_back(i);
  }
  for (size_t i : stream_ids) in_bootstrap[i] = false;

  std::vector<report::AdrReport> bootstrap;
  std::vector<size_t> bootstrap_ids;
  std::vector<report::AdrReport> stream;
  for (size_t i = 0; i < corpus_size; ++i) {
    if (!in_bootstrap[i]) continue;
    bootstrap_ids.push_back(i);
    bootstrap.push_back(workload.corpus.db.Get(static_cast<report::ReportId>(i)));
  }
  for (size_t i : stream_ids) {
    stream.push_back(workload.corpus.db.Get(static_cast<report::ReportId>(i)));
  }
  const size_t bootstrap_size = bootstrap.size();
  const size_t stream_size = stream.size();

  // Training set: the adrdedup_detect recipe — ground-truth duplicate
  // pairs fully inside the bootstrap, plus sampled negatives.
  std::vector<distance::LabeledPair> labels;
  std::unordered_set<uint64_t> keys;
  size_t positives = 0;
  for (auto [a, b] : workload.corpus.duplicate_pairs) {
    if (!in_bootstrap[a] || !in_bootstrap[b]) continue;
    distance::LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    pair.label = +1;
    pair.vector = ComputeDistanceVector(workload.features[pair.pair.a],
                                        workload.features[pair.pair.b]);
    if (keys.insert(PairKey(pair.pair)).second) {
      labels.push_back(pair);
      ++positives;
    }
  }
  const size_t negatives = Scaled(20000, 2000);
  util::Rng rng(7);
  const auto n = static_cast<uint32_t>(bootstrap_ids.size());
  while (labels.size() < positives + negatives) {
    const auto a =
        static_cast<report::ReportId>(bootstrap_ids[rng.Uniform(n)]);
    const auto b =
        static_cast<report::ReportId>(bootstrap_ids[rng.Uniform(n)]);
    if (a == b) continue;
    distance::LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    if (!keys.insert(PairKey(pair.pair)).second) continue;
    pair.label = -1;
    pair.vector = ComputeDistanceVector(workload.features[pair.pair.a],
                                        workload.features[pair.pair.b]);
    labels.push_back(pair);
  }

  size_t conns = Scaled(1000, 8);
  const size_t conn_budget = MaxConnectionsByRlimit();
  if (conns > conn_budget) {
    std::cout << "clamping connections " << conns << " -> " << conn_budget
              << " (RLIMIT_NOFILE)\n";
    conns = conn_budget;
  }
  const size_t parity_n = std::min(stream.size(), Scaled(320, 64));
  const size_t open_loop_requests = Scaled(6000, 192);
  std::cout << "bootstrap=" << bootstrap_size << " stream=" << stream_size
            << " parity=" << parity_n << " connections=" << conns
            << " open-loop requests=" << open_loop_requests
            << " labels=" << labels.size() << " (" << positives
            << " positive)\n\n";

  bool all_ok = true;
  eval::TablePrinter table(
      &std::cout, {"phase", "conns", "requests", "QPS", "p50 ms", "p95 ms",
                   "p99 ms", "shed %"});

  // Parity order: stream reports whose ground-truth duplicate partner is
  // already bootstrapped go first, so the byte comparison exercises real
  // detection lines (an all-clean slice would compare "" against "").
  std::vector<size_t> parity_order;
  {
    std::vector<size_t> stream_pos(corpus_size, corpus_size);
    for (size_t i = 0; i < stream_ids.size(); ++i) {
      stream_pos[stream_ids[i]] = i;
    }
    std::unordered_set<size_t> chosen;
    for (auto [a, b] : workload.corpus.duplicate_pairs) {
      for (auto [mine, partner] : {std::pair{a, b}, std::pair{b, a}}) {
        if (stream_pos[mine] == corpus_size || !in_bootstrap[partner]) {
          continue;
        }
        if (chosen.insert(stream_pos[mine]).second) {
          parity_order.push_back(stream_pos[mine]);
        }
      }
    }
    for (size_t i = 0; i < stream.size(); ++i) {
      if (!chosen.contains(i)) parity_order.push_back(i);
    }
    parity_order.resize(parity_n);
  }

  // --- Phase 1a: direct sequential baseline (canonical stdin bytes) ---
  minispark::SparkContext direct_ctx({.num_executors = 4});
  auto direct = MakeService(&direct_ctx, labels, bootstrap);
  if (!direct) return 1;
  std::string direct_lines;
  serve::LatencyRecorder direct_latency;
  util::Stopwatch direct_wall;
  for (size_t i = 0; i < parity_n; ++i) {
    util::Stopwatch request;
    auto response = direct->Screen(stream[parity_order[i]]);
    if (!response.ok()) {
      std::cout << "direct Screen failed: " << response.status().ToString()
                << "\n";
      return 1;
    }
    direct_latency.Record(request.ElapsedMillis());
    direct_lines +=
        serve::FormatMatchesCsv(stream[parity_order[i]], response.value());
  }
  const double direct_seconds = direct_wall.ElapsedSeconds();
  const double direct_qps = static_cast<double>(parity_n) / direct_seconds;
  direct->Stop();
  const auto direct_summary = direct_latency.Summarize();
  table.AddRow({"direct seq", "-", std::to_string(parity_n),
                eval::TablePrinter::Num(direct_qps, 1),
                eval::TablePrinter::Num(direct_summary.p50_ms, 3),
                eval::TablePrinter::Num(direct_summary.p95_ms, 3),
                eval::TablePrinter::Num(direct_summary.p99_ms, 3), "0.0"});

  // --- Phase 1b: identical service behind the NetServer, binary path ---
  minispark::SparkContext net_ctx({.num_executors = 4});
  auto service = MakeService(&net_ctx, labels, bootstrap);
  if (!service) return 1;
  NetServerOptions net_options;
  net_options.max_connections = conns + 16;
  net_options.idle_timeout_ms = 0.0;  // a paced open loop can look idle
  NetServer server(service.get(), net_options);
  if (auto status = server.Start(); !status.ok()) {
    std::cout << "NetServer::Start failed: " << status.ToString() << "\n";
    return 1;
  }

  double net_seq_p95 = 0.0;
  {
    const int fd = ConnectTo(server.port());
    if (fd < 0) {
      std::cout << "parity connect failed\n";
      return 1;
    }
    std::string rx;
    std::string net_lines;
    serve::LatencyRecorder net_latency;
    util::Stopwatch net_wall;
    bool net_ok = true;
    for (size_t i = 0; i < parity_n && net_ok; ++i) {
      util::Stopwatch request;
      Frame frame;
      ScreenResponseBody body;
      net_ok = SendAll(fd, BinaryScreenRequest(stream[parity_order[i]])) &&
               RecvFrameBlocking(fd, &rx, &frame) &&
               frame.type == FrameType::kScreenResponse &&
               DecodeScreenResponse(frame.payload, &body) &&
               body.status == ScreenStatus::kOk;
      if (!net_ok) break;
      net_latency.Record(request.ElapsedMillis());
      for (const auto& [case_number, score] : body.matches) {
        net_lines += stream[parity_order[i]].case_number() + "," +
                     case_number + "," +
                     std::to_string(score) + "\n";
      }
    }
    const double net_qps =
        static_cast<double>(parity_n) / net_wall.ElapsedSeconds();
    ::close(fd);
    const bool parity = net_ok && net_lines == direct_lines;
    std::cout << "parity gate: " << (parity ? "PASS" : "FAIL") << " ("
              << parity_n << " requests, " << direct_lines.size()
              << " canonical bytes"
              << (net_ok ? "" : ", socket round trip failed") << ")\n";
    all_ok = all_ok && parity;
    const auto net_summary = net_latency.Summarize();
    net_seq_p95 = net_summary.p95_ms;
    table.AddRow({"net seq", "1", std::to_string(parity_n),
                  eval::TablePrinter::Num(net_qps, 1),
                  eval::TablePrinter::Num(net_summary.p50_ms, 3),
                  eval::TablePrinter::Num(net_summary.p95_ms, 3),
                  eval::TablePrinter::Num(net_summary.p99_ms, 3), "0.0"});
  }

  // --- Phase 1c: same service with a write-ahead journal (fsync=batch) ---
  // Screening decisions must stay bit-identical to the journal-less
  // direct run (hard gate), and the durability tax at the default batch
  // fsync policy must stay within 5% of the net-seq p95 — a timing gate,
  // so like the hotpath benches it prints always but fails the process
  // only under ADRDEDUP_BENCH_STRICT=1 (smoke scales are too noisy).
  {
    namespace fs = std::filesystem;
    const fs::path wal_dir =
        fs::temp_directory_path() /
        ("adrdedup-bench-net-wal-" + std::to_string(::getpid()));
    fs::remove_all(wal_dir);
    fs::create_directories(wal_dir);
    minispark::SparkContext wal_ctx({.num_executors = 4});
    auto wal_service = MakeService(&wal_ctx, labels, bootstrap,
                                   wal_dir.string());
    if (!wal_service) return 1;
    NetServer wal_server(wal_service.get(), net_options);
    if (auto status = wal_server.Start(); !status.ok()) {
      std::cout << "NetServer::Start (journaled) failed: "
                << status.ToString() << "\n";
      return 1;
    }
    const int fd = ConnectTo(wal_server.port());
    if (fd < 0) {
      std::cout << "journaled parity connect failed\n";
      return 1;
    }
    std::string rx;
    std::string wal_lines;
    serve::LatencyRecorder wal_latency;
    bool wal_net_ok = true;
    for (size_t i = 0; i < parity_n && wal_net_ok; ++i) {
      util::Stopwatch request;
      Frame frame;
      ScreenResponseBody body;
      wal_net_ok =
          SendAll(fd, BinaryScreenRequest(stream[parity_order[i]])) &&
          RecvFrameBlocking(fd, &rx, &frame) &&
          frame.type == FrameType::kScreenResponse &&
          DecodeScreenResponse(frame.payload, &body) &&
          body.status == ScreenStatus::kOk;
      if (!wal_net_ok) break;
      wal_latency.Record(request.ElapsedMillis());
      for (const auto& [case_number, score] : body.matches) {
        wal_lines += stream[parity_order[i]].case_number() + "," +
                     case_number + "," + std::to_string(score) + "\n";
      }
    }
    ::close(fd);
    const uint64_t appends = wal_service->metrics().journal_appends();
    const uint64_t fsyncs = wal_service->metrics().journal_fsyncs();
    wal_server.Stop();
    wal_service->Stop();
    std::error_code ec;
    fs::remove_all(wal_dir, ec);

    const bool wal_parity = wal_net_ok && wal_lines == direct_lines;
    std::cout << "journaled parity gate: " << (wal_parity ? "PASS" : "FAIL")
              << " (" << appends << " WAL appends, " << fsyncs
              << " batched fsyncs"
              << (wal_net_ok ? "" : ", socket round trip failed") << ")\n";
    all_ok = all_ok && wal_parity;

    const auto wal_summary = wal_latency.Summarize();
    table.AddRow({"net seq +wal", "1", std::to_string(parity_n),
                  "-",
                  eval::TablePrinter::Num(wal_summary.p50_ms, 3),
                  eval::TablePrinter::Num(wal_summary.p95_ms, 3),
                  eval::TablePrinter::Num(wal_summary.p99_ms, 3), "0.0"});
    // 0.25 ms of absolute slack keeps the relative gate meaningful when
    // the smoke-scale p95 is itself a fraction of a millisecond.
    const bool overhead_ok =
        wal_summary.p95_ms <= net_seq_p95 * 1.05 + 0.25;
    const double overhead_pct =
        net_seq_p95 > 0.0
            ? 100.0 * (wal_summary.p95_ms / net_seq_p95 - 1.0)
            : 0.0;
    std::cout << "journal overhead gate (p95 +"
              << eval::TablePrinter::Num(overhead_pct, 1)
              << "% vs net seq, budget 5%): "
              << (overhead_ok ? "PASS" : "FAIL");
    const char* strict = std::getenv("ADRDEDUP_BENCH_STRICT");
    if (strict != nullptr && std::string(strict) == "1") {
      all_ok = all_ok && overhead_ok;
      std::cout << " [strict]";
    } else if (!overhead_ok) {
      std::cout << " (advisory outside ADRDEDUP_BENCH_STRICT=1)";
    }
    std::cout << "\n";
  }

  // Requests for the load phases, pre-encoded in both protocols.
  std::vector<std::string> binary_requests(stream.size());
  std::vector<std::string> http_requests(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    binary_requests[i] = BinaryScreenRequest(stream[i]);
    http_requests[i] = HttpScreenRequest(stream[i]);
  }

  // --- Phase 2: open-loop Poisson arrivals at ~2x the sequential rate ---
  const double offered_qps = std::max(25.0, 2.0 * direct_qps);
  std::vector<double> arrival_ms(open_loop_requests);
  {
    util::Rng arrivals_rng(11);
    double t = 0.0;
    for (size_t i = 0; i < open_loop_requests; ++i) {
      t += -std::log(1.0 - arrivals_rng.UniformDouble()) / offered_qps *
           1000.0;
      arrival_ms[i] = t;
    }
  }
  const LoadResult load =
      RunOpenLoop(server.port(), conns, kHttpStride, arrival_ms,
                  binary_requests, http_requests,
                  /*drain_grace_ms=*/180000.0);
  const bool load_ok = !load.timed_out && load.client_errors == 0 &&
                       load.invalid == 0 && load.answered == load.sent &&
                       load.sent == open_loop_requests;
  const auto load_summary = Summarize(load.latencies_ms);
  const double load_shed_pct =
      100.0 * static_cast<double>(load.shed) /
      static_cast<double>(std::max<size_t>(1, load.sent));
  table.AddRow({"open loop", std::to_string(conns),
                std::to_string(load.sent),
                eval::TablePrinter::Num(
                    static_cast<double>(load.answered) / load.wall_seconds,
                    1),
                eval::TablePrinter::Num(load_summary.p50_ms, 3),
                eval::TablePrinter::Num(load_summary.p95_ms, 3),
                eval::TablePrinter::Num(load_summary.p99_ms, 3),
                eval::TablePrinter::Num(load_shed_pct, 2)});
  std::cout << "open-loop gate: " << (load_ok ? "PASS" : "FAIL")
            << " (offered " << eval::TablePrinter::Num(offered_qps, 1)
            << " qps, answered " << load.answered << "/" << load.sent
            << ", shed " << load.shed << ", errors " << load.client_errors
            << (load.timed_out ? ", TIMED OUT" : "") << ")\n";
  all_ok = all_ok && load_ok;

  // --- Phase 3: overload burst — everything at t=0 against the queue ---
  const size_t burst_conns = std::min<size_t>(conns, 8);
  const size_t burst_requests = kQueueCapacity * 2;
  const uint64_t shed_before_burst = service->metrics().requests_shed();
  const LoadResult burst = RunOpenLoop(
      server.port(), burst_conns, /*http_stride=*/4,
      std::vector<double>(burst_requests, 0.0), binary_requests,
      http_requests, /*drain_grace_ms=*/180000.0);
  const uint64_t shed_counter_delta =
      service->metrics().requests_shed() - shed_before_burst;
  const bool burst_ok =
      !burst.timed_out && burst.client_errors == 0 && burst.invalid == 0 &&
      burst.answered == burst.sent && burst.ok >= 1 && burst.shed >= 1 &&
      shed_counter_delta == burst.shed;
  const auto burst_summary = Summarize(burst.latencies_ms);
  const double burst_shed_pct =
      100.0 * static_cast<double>(burst.shed) /
      static_cast<double>(std::max<size_t>(1, burst.sent));
  table.AddRow({"overload burst", std::to_string(burst_conns),
                std::to_string(burst.sent),
                eval::TablePrinter::Num(
                    static_cast<double>(burst.answered) / burst.wall_seconds,
                    1),
                eval::TablePrinter::Num(burst_summary.p50_ms, 3),
                eval::TablePrinter::Num(burst_summary.p95_ms, 3),
                eval::TablePrinter::Num(burst_summary.p99_ms, 3),
                eval::TablePrinter::Num(burst_shed_pct, 2)});
  std::cout << "overload gate: " << (burst_ok ? "PASS" : "FAIL")
            << " (answered " << burst.answered << "/" << burst.sent
            << ", ok " << burst.ok << ", shed " << burst.shed
            << ", requests_shed delta " << shed_counter_delta
            << (burst.timed_out ? ", TIMED OUT" : "") << ")\n";
  all_ok = all_ok && burst_ok;

  // --- Health + metrics probes over HTTP ---
  {
    bool probes_ok = false;
    const int fd = ConnectTo(server.port());
    if (fd >= 0) {
      std::string rx;
      std::string health;
      std::string metrics;
      if (SendAll(fd, "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")) {
        health = RecvHttpBlocking(fd, &rx);
      }
      if (SendAll(fd, "GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")) {
        metrics = RecvHttpBlocking(fd, &rx);
      }
      probes_ok = health.find("200") != std::string::npos &&
                  health.find("\"healthy\"") != std::string::npos &&
                  metrics.find("200") != std::string::npos &&
                  metrics.find("\"net\"") != std::string::npos;
      ::close(fd);
    }
    std::cout << "health/metrics probe: " << (probes_ok ? "PASS" : "FAIL")
              << "\n\n";
    all_ok = all_ok && probes_ok;
  }

  table.Print();
  std::cout << "\n(latency percentiles are over kOk answers, measured from "
               "each request's scheduled arrival — open-loop accounting, so "
               "queue delay under overload is charged to the request)\n"
            << "\noverall: " << (all_ok ? "PASS" : "FAIL") << "\n";

  server.Stop();
  service->Stop();
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
