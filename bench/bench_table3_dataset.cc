// Table 3 — summary of the TGA dataset. Regenerates the corpus summary
// and prints it next to the paper's published numbers.
#include <iostream>

#include "bench/bench_common.h"

namespace adrdedup::bench {
namespace {

int Main() {
  PrintBanner("bench_table3_dataset", "Table 3 (summary of TGA dataset)");
  const auto& workload = SharedWorkload();
  datagen::GeneratorConfig config;  // the defaults the corpus was built with
  const auto summary = Summarize(workload.corpus, config);

  eval::TablePrinter table(&std::cout, {"Quantity", "Paper", "Measured"});
  table.AddRow({"Report period", "1 Jul. 2013 - 31 Dec. 2013",
                summary.report_period});
  table.AddRow({"Number of cases", "10,382",
                std::to_string(summary.num_cases)});
  table.AddRow({"Number of fields per report", "37",
                std::to_string(summary.num_fields)});
  table.AddRow({"Number of unique drugs", "1,366",
                std::to_string(summary.num_unique_drugs)});
  table.AddRow({"Number of unique ADRs", "2,351",
                std::to_string(summary.num_unique_adrs)});
  table.AddRow({"Known duplicate pairs", "286",
                std::to_string(summary.known_duplicate_pairs)});
  table.Print();
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
