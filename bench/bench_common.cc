#include "bench/bench_common.h"

#include <algorithm>
#include <cstdlib>

namespace adrdedup::bench {

double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("ADRDEDUP_BENCH_SCALE");
    if (env == nullptr) return 0.1;
    const double value = std::atof(env);
    if (value <= 0.0) return 0.1;
    return std::clamp(value, 0.001, 10.0);
  }();
  return scale;
}

size_t Scaled(size_t paper_size, size_t minimum) {
  const auto scaled =
      static_cast<size_t>(static_cast<double>(paper_size) * BenchScale());
  return std::max(minimum, scaled);
}

const Workload& SharedWorkload() {
  static Workload* workload = [] {
    auto* w = new Workload();
    datagen::GeneratorConfig config;  // paper Table 3 defaults
    w->corpus = datagen::GenerateCorpus(config);
    util::ThreadPool pool(4);
    w->features = distance::ExtractAllFeatures(w->corpus.db, {}, &pool);
    return w;
  }();
  return *workload;
}

distance::LabeledPairDatasets MakeDatasets(size_t train_pairs,
                                           size_t test_pairs,
                                           uint64_t seed) {
  distance::DatasetSpec spec;
  spec.seed = seed;
  spec.num_training_pairs = train_pairs;
  spec.num_testing_pairs = test_pairs;
  return BuildDatasets(SharedWorkload().corpus, SharedWorkload().features,
                       spec);
}

std::vector<int8_t> LabelsOf(const distance::PairDataset& dataset) {
  std::vector<int8_t> labels;
  labels.reserve(dataset.pairs.size());
  for (const auto& pair : dataset.pairs) labels.push_back(pair.label);
  return labels;
}

void PrintBanner(const std::string& experiment,
                 const std::string& paper_reference) {
  std::cout << "==============================================\n"
            << experiment << "\n"
            << "reproduces: " << paper_reference << "\n"
            << "workload scale: " << BenchScale()
            << " of the paper's pair counts"
            << " (ADRDEDUP_BENCH_SCALE to change)\n"
            << "==============================================\n";
}

}  // namespace adrdedup::bench
