// Storage spill — persist/spill parity and overhead under memory
// pressure: the distance stage is persisted MEMORY_AND_DISK and scored
// as a second action over the same materialized blocks (DESIGN.md §5d).
// An unbounded-budget run establishes the baseline detections and the
// total block bytes; a budget sweep then shrinks the block manager's
// memory to fractions of that total, forcing LRU eviction to spill
// blocks to CRC-checked files and read them back on the scoring pass.
// Every budgeted run must reproduce the unbounded scores bit-identically
// (spilled bytes round-trip exactly); the bench reports the wall-clock
// overhead spilling costs and FAILS (exit 1) on any divergence, or if
// the tightest budget did not spill at least 30% of stored blocks.
#include <cstdint>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "distance/pairwise.h"
#include "minispark/context.h"
#include "minispark/rdd.h"
#include "minispark/storage/storage_level.h"

namespace adrdedup::bench {
namespace {

constexpr double kBudgetFractions[] = {0.5, 0.25, 0.1};
constexpr size_t kBlocks = 16;
constexpr double kThreshold = 0.5;

struct RunResult {
  std::vector<double> scores;
  size_t detections = 0;
  double seconds = 0.0;
  minispark::MetricsSnapshot metrics;
};

RunResult RunPersistedScoring(const std::vector<distance::ReportFeatures>& features,
                              const std::vector<distance::ReportPair>& pairs,
                              const core::FastKnnClassifier& classifier,
                              uint64_t memory_budget_bytes) {
  minispark::SparkContext ctx(
      {.num_executors = 4, .memory_budget_bytes = memory_budget_bytes});
  util::Stopwatch watch;
  auto stage = distance::PairDistancesRdd(&ctx, features, pairs, {}, kBlocks)
                   .Persist(minispark::storage::StorageLevel::kMemoryAndDisk);
  // Action 1 materializes the distance vectors (the pruning pass of the
  // pipeline); action 2 re-reads the same blocks to score, so a tight
  // budget forces the scoring pass through the spill files.
  const auto vectors = stage.Collect();
  const core::FastKnnClassifier* clf = &classifier;
  auto scored =
      stage
          .MapPartitionsWithIndex<std::pair<size_t, double>>(
              [clf](size_t,
                    const std::vector<std::pair<size_t, distance::DistanceVector>>&
                        records) {
                core::FastKnnScratch scratch;
                std::vector<std::pair<size_t, double>> out;
                out.reserve(records.size());
                for (const auto& [index, vector] : records) {
                  out.emplace_back(index, clf->Score(vector, &scratch));
                }
                return out;
              })
          .Collect();

  RunResult result;
  result.scores.resize(pairs.size());
  for (const auto& [index, score] : scored) result.scores[index] = score;
  result.seconds = watch.ElapsedSeconds();
  for (const double score : result.scores) {
    if (score >= kThreshold) ++result.detections;
  }
  result.metrics = ctx.metrics().Snapshot();
  (void)vectors;
  return result;
}

int Main() {
  PrintBanner("bench_storage_spill",
              "block-manager spill (bit-identical detections under budget)");
  const size_t train = Scaled(1000000, 20000);
  const size_t test = Scaled(100000, 5000);
  const auto data = MakeDatasets(train, test, 29);
  const auto& features = SharedWorkload().features;

  std::vector<distance::ReportPair> pairs;
  pairs.reserve(data.test.pairs.size());
  for (const auto& labeled : data.test.pairs) pairs.push_back(labeled.pair);

  core::FastKnnOptions options;
  options.k = 9;
  options.num_clusters = 48;
  core::FastKnnClassifier classifier(options);
  {
    minispark::SparkContext fit_ctx({.num_executors = 4});
    classifier.Fit(data.train.pairs, &fit_ctx.pool());
  }

  // Unbounded baseline: every block stays memory-resident; its
  // bytes_stored metric sizes the budget sweep.
  const RunResult baseline =
      RunPersistedScoring(features, pairs, classifier, /*budget=*/0);
  const uint64_t total_bytes = baseline.metrics.bytes_stored;
  std::cout << "\n" << pairs.size() << " pairs in " << kBlocks
            << " blocks; unbounded persist stored "
            << baseline.metrics.blocks_stored << " blocks / " << total_bytes
            << " bytes, scored in " << baseline.seconds << " s ("
            << baseline.detections << " detections)\n\n";

  eval::TablePrinter table(
      &std::cout, {"budget", "spilled", "spill frac", "reads", "time (s)",
                   "overhead", "parity"});
  bool all_exact = true;
  double tightest_spill_fraction = 0.0;
  for (const double fraction : kBudgetFractions) {
    const uint64_t budget = static_cast<uint64_t>(
        fraction * static_cast<double>(total_bytes));
    const RunResult run =
        RunPersistedScoring(features, pairs, classifier, budget);

    bool exact = run.scores.size() == baseline.scores.size() &&
                 run.detections == baseline.detections;
    for (size_t i = 0; exact && i < run.scores.size(); ++i) {
      exact = run.scores[i] == baseline.scores[i];
    }
    all_exact = all_exact && exact;

    const double spill_fraction =
        run.metrics.blocks_stored > 0
            ? static_cast<double>(run.metrics.blocks_spilled) /
                  static_cast<double>(run.metrics.blocks_stored)
            : 0.0;
    tightest_spill_fraction = spill_fraction;  // fractions sweep tightward
    const double overhead =
        baseline.seconds > 0.0 ? run.seconds / baseline.seconds - 1.0 : 0.0;
    table.AddRow({eval::TablePrinter::Num(100.0 * fraction, 0) + "%",
                  std::to_string(run.metrics.blocks_spilled),
                  eval::TablePrinter::Num(100.0 * spill_fraction, 0) + "%",
                  std::to_string(run.metrics.spill_blocks_read),
                  eval::TablePrinter::Num(run.seconds, 3),
                  eval::TablePrinter::Num(100.0 * overhead, 1) + "%",
                  exact ? "exact" : "DIVERGED"});
  }
  table.Print();
  std::cout << "(spilled blocks round-trip through CRC-checked files: every "
               "budgeted run must match the unbounded detections bit-exactly)\n";
  if (!all_exact) {
    std::cerr << "FAIL: a budgeted run diverged from the unbounded "
                 "detections\n";
    return 1;
  }
  if (tightest_spill_fraction < 0.3) {
    std::cerr << "FAIL: tightest budget spilled only "
              << 100.0 * tightest_spill_fraction
              << "% of stored blocks (need >= 30%)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
