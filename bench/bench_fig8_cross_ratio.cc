// Figure 8 — cross-cluster work relative to intra-cluster work, and
// execution time, as the cluster number b grows (4M training / 10k
// testing pairs, scaled). The paper reports cross/intra ratios of
// 1.4-1.9% and an execution-time curve that falls ~31% from b=25 to
// b=55, then flattens or slightly rises at b=70.
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"

namespace adrdedup::bench {
namespace {

int Main() {
  PrintBanner("bench_fig8_cross_ratio",
              "Figure 8 (cross/intra comparison ratio and time vs b)");
  const size_t train = Scaled(4000000, 40000);
  const size_t test = Scaled(10000, 1000);
  std::cout << "training pairs: " << train << ", testing pairs: " << test
            << "\n\n";
  const auto data = MakeDatasets(train, test);
  minispark::SparkContext ctx({.num_executors = 4});

  eval::TablePrinter table(&std::cout,
                           {"clusters b", "cross/intra ratio (8a)",
                            "execution time s (8b)"});
  for (size_t b : {10u, 25u, 40u, 55u, 70u}) {
    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = b;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx.pool());
    util::Stopwatch watch;
    (void)classifier.ScoreAllSpark(&ctx, data.test.pairs);
    const double seconds = watch.ElapsedSeconds();
    const auto stats = classifier.stats().Snapshot();
    table.AddRow({std::to_string(b),
                  eval::TablePrinter::Num(stats.CrossToIntraRatio(), 5),
                  eval::TablePrinter::Num(seconds, 3)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
