// Chaos recovery — fault-injection overhead and exactness of recovery:
// the Fast kNN scoring stage (the pipeline's dominant cost, Fig. 10(a))
// is run under a seeded per-task fault rate sweep. Failed tasks are
// retried through lineage, so every chaotic run must reproduce the
// fault-free scores bit-identically; the bench reports the wall-clock
// overhead the retries cost and FAILS (exit 1) on any score divergence.
//
// The paper's cluster runs inherit this guarantee from Spark's task
// rescheduling; minispark reproduces it with the task-attempt layer in
// SparkContext::RunTask (DESIGN.md §5c).
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "minispark/context.h"
#include "minispark/fault_injector.h"

namespace adrdedup::bench {
namespace {

constexpr double kFaultRates[] = {0.01, 0.05, 0.1, 0.2};
constexpr size_t kBlocks = 8;

int Main() {
  PrintBanner("bench_chaos_recovery",
              "task fault tolerance (retry overhead + exact recovery)");
  const size_t train = Scaled(1000000, 20000);
  const size_t test = Scaled(100000, 5000);
  const auto data = MakeDatasets(train, test, 23);

  core::FastKnnOptions options;
  options.k = 9;
  options.num_clusters = 48;
  core::FastKnnClassifier classifier(options);
  {
    minispark::SparkContext fit_ctx({.num_executors = 4});
    classifier.Fit(data.train.pairs, &fit_ctx.pool());
  }

  // Fault-free baseline.
  std::vector<double> baseline;
  double baseline_seconds = 0.0;
  {
    minispark::SparkContext ctx({.num_executors = 4});
    util::Stopwatch watch;
    baseline = classifier.ScoreAllSpark(&ctx, data.test.pairs, kBlocks);
    baseline_seconds = watch.ElapsedSeconds();
  }
  std::cout << "\n" << test << " test pairs, " << train
            << " training pairs; fault-free scoring: " << baseline_seconds
            << " s\n\n";

  eval::TablePrinter table(
      &std::cout, {"fault rate", "faults", "retried", "backoff (ms)",
                   "time (s)", "overhead", "parity"});
  bool all_exact = true;
  for (size_t i = 0; i < std::size(kFaultRates); ++i) {
    const double rate = kFaultRates[i];
    minispark::FaultInjector injector(
        {.seed = 17 + i, .failure_probability = rate});
    // One scripted fault on top of the random draw so even the smallest
    // smoke scale (few tasks, low rate) exercises at least one retry.
    injector.FailPartitionOnAttempt(0, 1);
    // With hundreds of task attempts at a 20% fault rate the default 4
    // attempts leave a non-negligible chance some task exhausts its
    // budget (0.2^4 per task); 8 attempts push that below 1e-5.
    minispark::SparkContext ctx({.num_executors = 4,
                                 .max_task_failures = 8,
                                 .fault_injector = &injector});
    util::Stopwatch watch;
    const std::vector<double> scores =
        classifier.ScoreAllSpark(&ctx, data.test.pairs, kBlocks);
    const double seconds = watch.ElapsedSeconds();

    bool exact = scores.size() == baseline.size();
    for (size_t j = 0; exact && j < scores.size(); ++j) {
      exact = scores[j] == baseline[j];
    }
    all_exact = all_exact && exact;

    const auto metrics = ctx.metrics().Snapshot();
    const double overhead =
        baseline_seconds > 0.0 ? seconds / baseline_seconds - 1.0 : 0.0;
    table.AddRow({eval::TablePrinter::Num(rate, 2),
                  std::to_string(injector.faults_injected()),
                  std::to_string(metrics.tasks_retried),
                  eval::TablePrinter::Num(metrics.task_backoff_ms, 1),
                  eval::TablePrinter::Num(seconds, 3),
                  eval::TablePrinter::Num(100.0 * overhead, 1) + "%",
                  exact ? "exact" : "DIVERGED"});
    if (metrics.tasks_retried == 0) {
      std::cout << "warning: rate " << rate
                << " run retried no tasks despite the scripted fault\n";
      all_exact = false;
    }
  }
  table.Print();
  std::cout << "(retried tasks recompute through lineage: recovery must be "
               "bit-exact at every fault rate)\n";
  if (!all_exact) {
    std::cerr << "FAIL: a chaotic run diverged from the fault-free scores "
                 "or never retried\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
