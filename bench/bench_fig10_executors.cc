// Figure 10 — execution time vs executor number:
//   10(a) Fast kNN classification for training sizes {2M, 3M, 4M}
//         (scaled); 48 training clusters, 5 test blocks;
//   10(b) the pairwise-distance computing stage over the full corpus
//         (10,382 reports).
//
// Executor scaling is obtained from the minispark ClusterCostModel over
// measured task durations (see bench_fig9 and DESIGN.md): the decreasing
// trend flattens as per-executor coordination overhead grows, the effect
// the paper attributes to data shuffle across more nodes.
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"
#include "distance/pairwise.h"
#include "minispark/cluster_model.h"
#include "util/random.h"

namespace adrdedup::bench {
namespace {

constexpr size_t kExecutorSweep[] = {5, 10, 15, 20};

int Main() {
  PrintBanner("bench_fig10_executors",
              "Figure 10 (execution time vs executor number)");
  const size_t test = Scaled(10000, 1000);
  minispark::SparkContext ctx({.num_executors = 4});
  const minispark::ClusterCostModel model;

  std::cout << "\n## Fig 10(a): overall classification time; "
            << "48 clusters, 5 blocks, " << test << " test pairs\n";
  eval::TablePrinter table_a(
      &std::cout, {"executors", "train 2M (s)", "train 3M (s)",
                   "train 4M (s)"});
  // Collect task durations once per training size, then sweep executors.
  std::vector<std::vector<double>> durations(3);
  std::vector<uint64_t> shuffle_bytes(3, 0);
  for (int i = 0; i < 3; ++i) {
    const size_t train =
        Scaled(static_cast<size_t>(i + 2) * 1000000, 20000);
    const auto data = MakeDatasets(train, test, 200 + i);
    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = 48;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx.pool());
    ctx.metrics().Reset();
    (void)classifier.ScoreAllSpark(&ctx, data.test.pairs, 5);
    durations[i] = ctx.metrics().TaskDurations();
    shuffle_bytes[i] = ctx.metrics().Snapshot().shuffle_bytes_written;
  }
  for (size_t executors : kExecutorSweep) {
    std::vector<std::string> row = {std::to_string(executors)};
    for (int i = 0; i < 3; ++i) {
      row.push_back(eval::TablePrinter::Num(
          model.SimulateExecutionSeconds(durations[i], shuffle_bytes[i],
                                         executors),
          3));
    }
    table_a.AddRow(row);
  }
  table_a.Print();

  std::cout << "\n## Fig 10(b): pairwise distance computing time "
            << "(10,382 reports)\n";
  // The distance stage of the workflow: compute distance vectors for a
  // batch of candidate pairs over the full corpus.
  const auto& workload = SharedWorkload();
  util::Rng rng(31);
  std::vector<distance::ReportPair> pairs;
  const size_t num_pairs = Scaled(2000000, 50000);
  pairs.reserve(num_pairs);
  const auto n = static_cast<uint32_t>(workload.corpus.db.size());
  while (pairs.size() < num_pairs) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a == b) continue;
    pairs.push_back(
        distance::ReportPair{std::min(a, b), std::max(a, b)});
  }
  ctx.metrics().Reset();
  (void)distance::ComputePairDistancesSpark(&ctx, workload.features, pairs,
                                            {}, 40);
  const auto stage_durations = ctx.metrics().TaskDurations();
  const auto stage_bytes = ctx.metrics().Snapshot().shuffle_bytes_written;

  eval::TablePrinter table_b(&std::cout,
                             {"executors", "distance stage time (s)"});
  for (size_t executors : kExecutorSweep) {
    table_b.AddRow(
        {std::to_string(executors),
         eval::TablePrinter::Num(
             model.SimulateExecutionSeconds(stage_durations, stage_bytes,
                                            executors),
             3)});
  }
  table_b.Print();
  std::cout << "(paper: the distance stage is a small fraction of the "
               "overall time and keeps speeding up with executors)\n";
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
