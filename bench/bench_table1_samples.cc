// Table 1 — sample duplicated reports. Prints two generated duplicate
// pairs in the paper's side-by-side field layout: one channel-overlap
// pair (same narrative, corrupted demographics — the paper's example (b),
// 84 vs 34) and one follow-up pair (same demographics, rewritten
// narrative — example (a)).
#include <iostream>

#include "bench/bench_common.h"
#include "report/field.h"

namespace adrdedup::bench {
namespace {

using report::AdrReport;
using report::FieldId;

void PrintPair(const char* title, const AdrReport& a, const AdrReport& b) {
  std::cout << "\n--- " << title << " ---\n";
  eval::TablePrinter table(&std::cout,
                           {"Field Name", "Report A", "Report B"});
  const FieldId fields[] = {
      FieldId::kCalculatedAge,
      FieldId::kSex,
      FieldId::kResidentialState,
      FieldId::kOnsetDate,
      FieldId::kReactionOutcomeDescription,
      FieldId::kGenericNameDescription,
      FieldId::kMeddraPtCode,
  };
  for (FieldId id : fields) {
    const auto& spec = report::GetFieldSpec(id);
    table.AddRow({std::string(spec.name), a.Get(id), b.Get(id)});
  }
  table.Print();
  std::cout << "report_description A:\n  " << a.description() << "\n";
  std::cout << "report_description B:\n  " << b.description() << "\n";
}

// Scores how "channel-like" a duplicate pair is: demographics corrupted,
// description overlapping.
bool DemographicsDiffer(const AdrReport& a, const AdrReport& b) {
  return a.Get(FieldId::kCalculatedAge) != b.Get(FieldId::kCalculatedAge) ||
         a.Get(FieldId::kSex) != b.Get(FieldId::kSex) ||
         a.Get(FieldId::kResidentialState) !=
             b.Get(FieldId::kResidentialState) ||
         a.Get(FieldId::kOnsetDate) != b.Get(FieldId::kOnsetDate);
}

int Main() {
  PrintBanner("bench_table1_samples", "Table 1 (sample duplicated reports)");
  const auto& workload = SharedWorkload();
  const auto& db = workload.corpus.db;

  const AdrReport* followup_a = nullptr;
  const AdrReport* followup_b = nullptr;
  const AdrReport* channel_a = nullptr;
  const AdrReport* channel_b = nullptr;
  for (const auto& [a, b] : workload.corpus.duplicate_pairs) {
    const AdrReport& ra = db.Get(a);
    const AdrReport& rb = db.Get(b);
    if (DemographicsDiffer(ra, rb)) {
      if (channel_a == nullptr) {
        channel_a = &ra;
        channel_b = &rb;
      }
    } else if (followup_a == nullptr) {
      followup_a = &ra;
      followup_b = &rb;
    }
    if (followup_a != nullptr && channel_a != nullptr) break;
  }

  if (followup_a != nullptr) {
    PrintPair(
        "(a) follow-up duplicate: fields agree, narrative rewritten",
        *followup_a, *followup_b);
  }
  if (channel_a != nullptr) {
    PrintPair(
        "(b) channel-overlap duplicate: transcription errors in fields",
        *channel_a, *channel_b);
  }
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
