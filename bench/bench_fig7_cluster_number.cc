// Figure 7 — impact of the training-set cluster number b on comparison
// volumes; 4M training / 10k testing pairs (scaled):
//   7(a) intra-cluster comparisons (decreasing in b, then uneven sizes
//        stall the trend),
//   7(b) additional clusters checked in stage 2 (increasing in b),
//   7(c) cross-cluster comparisons (decreasing in b).
#include <iostream>

#include "bench/bench_common.h"
#include "core/fast_knn.h"

namespace adrdedup::bench {
namespace {

int Main() {
  PrintBanner("bench_fig7_cluster_number",
              "Figure 7 (impact of the cluster number)");
  const size_t train = Scaled(4000000, 40000);
  const size_t test = Scaled(10000, 1000);
  std::cout << "training pairs: " << train << ", testing pairs: " << test
            << "\n\n";
  const auto data = MakeDatasets(train, test);
  minispark::SparkContext ctx({.num_executors = 4});

  eval::TablePrinter table(
      &std::cout,
      {"clusters b", "intra-cluster comparisons (7a)",
       "additional clusters checked (7b)",
       "cross-cluster comparisons (7c)"});
  for (size_t b : {10u, 25u, 40u, 55u, 70u}) {
    core::FastKnnOptions options;
    options.k = 9;
    options.num_clusters = b;
    core::FastKnnClassifier classifier(options);
    classifier.Fit(data.train.pairs, &ctx.pool());
    (void)classifier.ScoreAllSpark(&ctx, data.test.pairs);
    const auto stats = classifier.stats().Snapshot();
    table.AddRow({std::to_string(b),
                  std::to_string(stats.intra_cluster_comparisons),
                  std::to_string(stats.additional_clusters_checked),
                  std::to_string(stats.cross_cluster_comparisons)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace adrdedup::bench

int main() { return adrdedup::bench::Main(); }
