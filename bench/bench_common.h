// Shared scaffolding for the per-figure/per-table experiment harnesses.
//
// Every bench reproduces one table or figure of the paper's Section 5 at
// a configurable fraction of the published workload sizes: the authors
// ran on a 14-node cluster; we run on one machine, so pair counts are
// multiplied by ADRDEDUP_BENCH_SCALE (default 0.1; set to 1 for the
// paper-size runs). Counts, ratios and AUPR are size-normalized, so the
// reported shapes are comparable at any scale; every binary prints the
// scale it ran at.
#ifndef ADRDEDUP_BENCH_BENCH_COMMON_H_
#define ADRDEDUP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "distance/pair_dataset.h"
#include "distance/report_features.h"
#include "eval/table_printer.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace adrdedup::bench {

// Scale factor from ADRDEDUP_BENCH_SCALE (clamped to [0.001, 10]).
double BenchScale();

// paper_size * scale, at least `minimum`.
size_t Scaled(size_t paper_size, size_t minimum = 1);

struct Workload {
  datagen::GeneratedCorpus corpus;
  std::vector<distance::ReportFeatures> features;
};

// The full Table-3 corpus (10,382 reports, 286 duplicate pairs) with
// extracted features, built once per process.
const Workload& SharedWorkload();

// Labelled train/test pair datasets over the shared workload.
distance::LabeledPairDatasets MakeDatasets(size_t train_pairs,
                                           size_t test_pairs,
                                           uint64_t seed = 7);

// Extracts labels for metric computation.
std::vector<int8_t> LabelsOf(const distance::PairDataset& dataset);

// Prints the standard bench banner.
void PrintBanner(const std::string& experiment,
                 const std::string& paper_reference);

}  // namespace adrdedup::bench

#endif  // ADRDEDUP_BENCH_BENCH_COMMON_H_
