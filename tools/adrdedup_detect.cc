// adrdedup_detect — trains a Fast kNN duplicate detector from a report
// CSV plus a ground-truth duplicate-pair CSV, then audits the newest
// reports against the database and writes the detections.
//
//   adrdedup_detect --reports=reports.csv --truth=truth.csv
//       [--audit-tail=500] [--theta=0] [--k=9] [--clusters=32]
//       [--negatives=100000] [--executors=4] [--out=detections.csv]
//       [--save-model=model.bin | --load-model=model.bin]
//       [--use-blocking] [--seed=7] [--metrics-out=metrics.json]
//       [--memory-budget-mb=N] [--spill-dir=D] [--checkpoint-dir=D]
//
// The truth CSV (case_number_a, case_number_b) supplies positive labels;
// negatives are sampled uniformly from the remaining pair universe.
// --metrics-out dumps the minispark scheduler counters and per-stage wall
// times as JSON (same serializer as the serving layer's metrics export).
//
// The storage flags bound the minispark block store: with any of them
// set, the distance-vector stage runs persisted at MEMORY_AND_DISK
// (checkpointed instead when --checkpoint-dir is given), so a budget
// smaller than the stage spills blocks to CRC-checked files in
// --spill-dir rather than holding every vector in memory. Detections
// are bit-identical either way.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <unordered_set>

#include "blocking/blocking.h"
#include "minispark/fault_injector.h"
#include "core/fast_knn.h"
#include "core/model_io.h"
#include "distance/pair_dataset.h"
#include "distance/pairwise.h"
#include "minispark/storage/block_manager.h"
#include "minispark/storage/storage_level.h"
#include "distance/simd/dispatch.h"
#include "eval/metrics.h"
#include "report/report_io.h"
#include "util/csv.h"
#include "util/fault_fs.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace adrdedup {
namespace {

int Fail(const util::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Main(int argc, char** argv) {
  auto parsed = util::FlagSet::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const util::FlagSet& flags = parsed.value();
  if (auto status = flags.ExpectOnly(
          {"reports", "truth", "audit-tail", "theta", "k", "clusters",
           "negatives", "executors", "out", "save-model", "load-model",
           "use-blocking", "seed", "metrics-out", "max-task-failures",
           "chaos-rate", "chaos-seed", "memory-budget-mb", "spill-dir",
           "checkpoint-dir", "io-fault-script", "no-simd", "help"});
      !status.ok()) {
    return Fail(status);
  }
  if (flags.GetBool("help", false) || !flags.Has("reports")) {
    std::cout << "usage: adrdedup_detect --reports=reports.csv "
                 "--truth=truth.csv [--audit-tail=N] [--theta=X] [--k=N] "
                 "[--clusters=N] [--negatives=N] [--executors=N] "
                 "[--out=detections.csv] [--save-model=F|--load-model=F] "
                 "[--use-blocking] [--seed=N] [--metrics-out=F] "
                 "[--max-task-failures=N] [--chaos-rate=P] "
                 "[--chaos-seed=N] [--memory-budget-mb=N] [--spill-dir=D] "
                 "[--checkpoint-dir=D] [--io-fault-script=S] [--no-simd]\n";
    return flags.GetBool("help", false) ? 0 : 1;
  }
  if (flags.GetBool("no-simd", false)) {
    // Force the scalar kernel dispatch (DESIGN.md §5g) before any work
    // is submitted; equivalent to ADRDEDUP_NO_SIMD=1 in the environment.
    distance::simd::DisableSimd();
  }
  if (flags.Has("save-model") && flags.Has("load-model")) {
    return Fail(util::Status::InvalidArgument(
        "--save-model and --load-model are mutually exclusive"));
  }
  // Storage flags are validated before any data is read so a bad budget
  // or an unusable directory fails in milliseconds, not after the load.
  auto memory_budget_mb = flags.GetInt("memory-budget-mb", 0);
  if (!memory_budget_mb.ok()) return Fail(memory_budget_mb.status());
  if (memory_budget_mb.value() < 0) {
    return Fail(util::Status::InvalidArgument(
        "--memory-budget-mb must be non-negative, got " +
        std::to_string(memory_budget_mb.value())));
  }
  const std::string spill_dir = flags.GetString("spill-dir", "");
  const std::string checkpoint_dir = flags.GetString("checkpoint-dir", "");
  for (const std::string* dir : {&spill_dir, &checkpoint_dir}) {
    if (dir->empty()) continue;
    if (auto status = minispark::storage::BlockManager::EnsureWritableDir(*dir);
        !status.ok()) {
      return Fail(status);
    }
  }
  if (flags.Has("io-fault-script")) {
    // Deterministic I/O fault injection on the spill/checkpoint write
    // paths (see util/fault_fs.h for the script grammar), e.g.
    // "seed=7,short_write=0.1,enospc=0.05,classes=spill+checkpoint".
    auto script =
        util::ParseFaultScript(flags.GetString("io-fault-script", ""));
    if (!script.ok()) return Fail(script.status());
    util::FaultFs::Instance().SetScript(script.value());
    std::cerr << "I/O fault injection active: "
              << util::FormatFaultScript(script.value()) << "\n";
  }
  const bool use_storage = memory_budget_mb.value() > 0 ||
                           !spill_dir.empty() || !checkpoint_dir.empty();
  util::Stopwatch total_watch;
  util::Stopwatch stage_watch;
  double load_seconds = 0.0;
  double model_seconds = 0.0;
  double candidates_seconds = 0.0;
  double score_seconds = 0.0;

  // --- Load reports and ground truth. ---
  auto db_result = report::ReadCsv(flags.GetString("reports", ""));
  if (!db_result.ok()) return Fail(db_result.status());
  const report::ReportDatabase& db = db_result.value();

  std::vector<std::pair<uint32_t, uint32_t>> truth;
  if (flags.Has("truth")) {
    auto rows = util::CsvReadFile(flags.GetString("truth", ""));
    if (!rows.ok()) return Fail(rows.status());
    for (size_t r = 1; r < rows.value().size(); ++r) {
      const auto& row = rows.value()[r];
      if (row.size() != 2) {
        return Fail(util::Status::InvalidArgument(
            "truth row " + std::to_string(r) + " needs 2 columns"));
      }
      auto a = db.FindByCaseNumber(row[0]);
      auto b = db.FindByCaseNumber(row[1]);
      if (!a.ok()) return Fail(a.status());
      if (!b.ok()) return Fail(b.status());
      truth.emplace_back(std::min(a.value(), b.value()),
                         std::max(a.value(), b.value()));
    }
  }

  auto executors = flags.GetInt("executors", 4);
  auto theta = flags.GetDouble("theta", 0.0);
  auto audit_tail = flags.GetInt("audit-tail", 500);
  auto negatives = flags.GetInt("negatives", 100000);
  auto k = flags.GetInt("k", 9);
  auto clusters = flags.GetInt("clusters", 32);
  auto seed = flags.GetInt("seed", 7);
  auto max_task_failures = flags.GetInt("max-task-failures", 4);
  auto chaos_rate = flags.GetDouble("chaos-rate", 0.0);
  auto chaos_seed = flags.GetInt("chaos-seed", 1234);
  for (const auto* result : {&executors, &audit_tail, &negatives, &k,
                             &clusters, &seed, &max_task_failures,
                             &chaos_seed}) {
    if (!result->ok()) return Fail(result->status());
  }
  if (!theta.ok()) return Fail(theta.status());
  if (!chaos_rate.ok()) return Fail(chaos_rate.status());
  // Reject values that would otherwise wrap through size_t casts or hit
  // CHECKs deep inside k-means/kNN with no actionable message.
  if (k.value() <= 0) {
    return Fail(util::Status::InvalidArgument(
        "--k must be a positive neighbourhood size, got " +
        std::to_string(k.value())));
  }
  if (clusters.value() <= 0) {
    return Fail(util::Status::InvalidArgument(
        "--clusters must be a positive Voronoi cell count, got " +
        std::to_string(clusters.value())));
  }
  if (executors.value() <= 0) {
    return Fail(util::Status::InvalidArgument(
        "--executors must be positive, got " +
        std::to_string(executors.value())));
  }
  if (negatives.value() < 0) {
    return Fail(util::Status::InvalidArgument(
        "--negatives must be non-negative, got " +
        std::to_string(negatives.value())));
  }
  if (audit_tail.value() < 0) {
    return Fail(util::Status::InvalidArgument(
        "--audit-tail must be non-negative, got " +
        std::to_string(audit_tail.value())));
  }
  if (max_task_failures.value() <= 0) {
    return Fail(util::Status::InvalidArgument(
        "--max-task-failures must be positive, got " +
        std::to_string(max_task_failures.value())));
  }
  if (chaos_rate.value() < 0.0 || chaos_rate.value() >= 1.0) {
    return Fail(util::Status::InvalidArgument(
        "--chaos-rate must be in [0, 1), got " +
        std::to_string(chaos_rate.value())));
  }

  // --chaos-rate plugs the deterministic fault injector into the
  // scheduler so fault-tolerance overhead and parity are reproducible
  // from the command line (see EXPERIMENTS.md). The injector must
  // outlive the context.
  std::unique_ptr<minispark::FaultInjector> chaos;
  if (chaos_rate.value() > 0.0) {
    chaos = std::make_unique<minispark::FaultInjector>(
        minispark::FaultInjector::Options{
            .seed = static_cast<uint64_t>(chaos_seed.value()),
            .failure_probability = chaos_rate.value()});
  }
  minispark::SparkContext ctx(
      {.num_executors = static_cast<size_t>(executors.value()),
       .max_task_failures = static_cast<size_t>(max_task_failures.value()),
       .fault_injector = chaos.get(),
       .memory_budget_bytes =
           static_cast<uint64_t>(memory_budget_mb.value()) * 1024 * 1024,
       .spill_dir = spill_dir,
       .checkpoint_dir = checkpoint_dir});
  util::ThreadPool& pool = ctx.pool();
  const auto features = distance::ExtractAllFeatures(db, {}, &pool);
  std::cerr << "loaded " << db.size() << " reports, " << truth.size()
            << " ground-truth duplicate pairs\n";
  load_seconds = stage_watch.ElapsedSeconds();
  stage_watch.Restart();

  // --- Obtain a classifier: load, or train from truth + sampled negatives.
  core::FastKnnOptions options;
  options.k = static_cast<size_t>(k.value());
  options.num_clusters = static_cast<size_t>(clusters.value());

  core::FastKnnClassifier classifier(options);
  if (flags.Has("load-model")) {
    auto loaded = core::LoadModelFromFile(flags.GetString("load-model", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    classifier = std::move(loaded).value();
    std::cerr << "loaded model with " << classifier.num_partitions()
              << " partitions\n";
  } else {
    if (truth.empty()) {
      return Fail(util::Status::InvalidArgument(
          "--truth is required unless --load-model is given"));
    }
    std::unordered_set<uint64_t> truth_keys;
    std::vector<distance::LabeledPair> train;
    for (auto [a, b] : truth) {
      distance::LabeledPair pair;
      pair.pair = {a, b};
      pair.label = +1;
      pair.vector = ComputeDistanceVector(features[a], features[b]);
      truth_keys.insert(PairKey(pair.pair));
      train.push_back(pair);
    }
    util::Rng rng(static_cast<uint64_t>(seed.value()));
    const auto n = static_cast<uint32_t>(db.size());
    // Cap the request at the pair universe, or the rejection sampler
    // below never terminates on small databases.
    const uint64_t universe = static_cast<uint64_t>(n) * (n - 1) / 2;
    const uint64_t available =
        universe > truth.size() ? universe - truth.size() : 0;
    uint64_t wanted = static_cast<uint64_t>(negatives.value());
    if (wanted > available) {
      std::cerr << "clamping --negatives from " << wanted << " to the "
                << available << " pairs the database offers\n";
      wanted = available;
    }
    while (train.size() < truth.size() + static_cast<size_t>(wanted)) {
      const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
      const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
      if (a == b) continue;
      distance::LabeledPair pair;
      pair.pair = {std::min(a, b), std::max(a, b)};
      if (!truth_keys.insert(PairKey(pair.pair)).second) continue;
      pair.label = -1;
      pair.vector =
          ComputeDistanceVector(features[pair.pair.a], features[pair.pair.b]);
      train.push_back(pair);
    }
    classifier.Fit(train, &pool);
    std::cerr << "trained on " << train.size() << " labelled pairs\n";
  }
  if (flags.Has("save-model")) {
    if (auto status = core::SaveModelToFile(
            classifier, flags.GetString("save-model", ""));
        !status.ok()) {
      return Fail(status);
    }
    std::cerr << "model saved to " << flags.GetString("save-model", "")
              << "\n";
  }
  model_seconds = stage_watch.ElapsedSeconds();
  stage_watch.Restart();

  // --- Candidate pairs for the audited tail. ---
  const size_t tail =
      std::min<size_t>(db.size(), static_cast<size_t>(audit_tail.value()));
  const size_t audit_from = db.size() - tail;
  std::vector<distance::ReportPair> pairs;
  if (flags.GetBool("use-blocking", false)) {
    blocking::BlockingOptions blocking_options;
    blocking_options.keys = {blocking::BlockingKey::kDrugToken,
                             blocking::BlockingKey::kAdrToken};
    auto blocked = GenerateCandidates(features, blocking_options);
    for (const auto& pair : blocked.pairs) {
      if (pair.b >= audit_from) pairs.push_back(pair);
    }
    std::cerr << "blocking kept " << pairs.size() << " candidate pairs ("
              << blocked.oversized_blocks_skipped
              << " oversized blocks skipped)\n";
  } else {
    std::vector<report::ReportId> earlier;
    for (size_t i = 0; i < audit_from; ++i) {
      earlier.push_back(static_cast<report::ReportId>(i));
    }
    std::vector<report::ReportId> audited;
    for (size_t i = audit_from; i < db.size(); ++i) {
      audited.push_back(static_cast<report::ReportId>(i));
    }
    pairs = distance::PairsForNewReports(earlier, audited);
    std::cerr << "auditing all " << pairs.size() << " candidate pairs\n";
  }
  candidates_seconds = stage_watch.ElapsedSeconds();
  stage_watch.Restart();

  // --- Score and threshold. ---
  std::vector<double> scores(pairs.size());
  if (use_storage) {
    // Storage-backed dataflow: the distance stage is persisted (or
    // snapshotted, with --checkpoint-dir) in the block store, and the
    // scoring pass is a second action over those blocks — under a tight
    // budget it transparently reads spilled files back.
    auto stage = distance::PairDistancesRdd(&ctx, features, pairs);
    if (!checkpoint_dir.empty()) {
      stage = stage.Checkpoint();
    } else {
      stage = stage.Persist(minispark::storage::StorageLevel::kMemoryAndDisk);
    }
    const core::FastKnnClassifier* clf = &classifier;
    auto scored = stage.MapPartitionsWithIndex<std::pair<size_t, double>>(
        [clf](size_t, const std::vector<
                  std::pair<size_t, distance::DistanceVector>>& records) {
          core::FastKnnScratch scratch;
          std::vector<std::pair<size_t, double>> out;
          out.reserve(records.size());
          for (const auto& [index, vector] : records) {
            out.emplace_back(index, clf->Score(vector, &scratch));
          }
          return out;
        });
    for (auto& [index, score] : scored.Collect()) {
      scores[index] = score;
    }
  } else {
    const auto vectors = ComputePairDistancesSpark(&ctx, features, pairs);
    std::vector<distance::LabeledPair> queries(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      queries[i].pair = pairs[i];
      queries[i].vector = vectors[i];
    }
    scores = classifier.ScoreAllSpark(&ctx, queries);
  }
  score_seconds = stage_watch.ElapsedSeconds();
  if (chaos) {
    const auto spark = ctx.metrics().Snapshot();
    std::cerr << "chaos: injected " << chaos->faults_injected()
              << " faults, tasks_failed=" << spark.tasks_failed
              << " tasks_retried=" << spark.tasks_retried
              << " backoff_ms=" << spark.task_backoff_ms << "\n";
  }

  std::vector<util::CsvRow> detections;
  detections.push_back({"case_number_a", "case_number_b", "score"});
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i] >= theta.value()) {
      detections.push_back({db.Get(pairs[i].a).case_number(),
                            db.Get(pairs[i].b).case_number(),
                            std::to_string(scores[i])});
    }
  }
  const std::string out_path = flags.GetString("out", "detections.csv");
  if (auto status = util::CsvWriteFile(out_path, detections);
      !status.ok()) {
    return Fail(status);
  }
  std::cout << "flagged " << detections.size() - 1 << " of " << pairs.size()
            << " candidate pairs at theta=" << theta.value() << " -> "
            << out_path << "\n";
  std::cout << "search stats: " << classifier.stats().Snapshot().ToString()
            << "\n";

  if (flags.Has("metrics-out")) {
    util::JsonWriter w(/*pretty=*/true);
    w.BeginObject();
    w.Field("tool", "adrdedup_detect");
    w.Field("reports", static_cast<uint64_t>(db.size()));
    w.Field("truth_pairs", static_cast<uint64_t>(truth.size()));
    w.Field("audited_tail", static_cast<uint64_t>(tail));
    w.Field("candidate_pairs", static_cast<uint64_t>(pairs.size()));
    w.Field("detections", static_cast<uint64_t>(detections.size() - 1));
    w.Field("theta", theta.value());
    w.Key("stage_seconds");
    w.BeginObject();
    w.Field("load", load_seconds);
    w.Field("model", model_seconds);
    w.Field("candidates", candidates_seconds);
    w.Field("score", score_seconds);
    w.Field("total", total_watch.ElapsedSeconds());
    w.EndObject();
    // Embedded compact so splicing cannot break the outer pretty layout.
    w.Key("minispark");
    w.RawValue(ctx.metrics().Snapshot().ToJson(ctx.metrics().TaskDurations(),
                                               /*pretty=*/false));
    w.EndObject();
    const std::string metrics_path = flags.GetString("metrics-out", "");
    std::ofstream out(metrics_path, std::ios::trunc);
    out << std::move(w).TakeString() << "\n";
    if (!out) {
      return Fail(util::Status::IoError("cannot write " + metrics_path));
    }
    std::cerr << "metrics written to " << metrics_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace adrdedup

int main(int argc, char** argv) {
  try {
    return adrdedup::Main(argc, argv);
  } catch (const std::exception& e) {
    // Anything that escapes — including a minispark TaskFailedException
    // once retries are exhausted — becomes a clean one-line failure
    // instead of std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
