// adrdedup_gen — generates a synthetic ADR report corpus as CSV, plus a
// ground-truth duplicate-pair CSV keyed by case number.
//
//   adrdedup_gen --out=reports.csv --truth=truth.csv
//       [--reports=10382] [--duplicates=286] [--drugs=1366]
//       [--adrs=2351] [--seed=42]
//
// The defaults reproduce the paper's Table 3 exactly.
#include <iostream>

#include "datagen/generator.h"
#include "report/report_io.h"
#include "util/csv.h"
#include "util/flags.h"

namespace adrdedup {
namespace {

int Fail(const util::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Main(int argc, char** argv) {
  auto parsed = util::FlagSet::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const util::FlagSet& flags = parsed.value();
  if (auto status = flags.ExpectOnly({"out", "truth", "reports",
                                      "duplicates", "drugs", "adrs",
                                      "seed", "help"});
      !status.ok()) {
    return Fail(status);
  }
  if (flags.GetBool("help", false)) {
    std::cout << "usage: adrdedup_gen --out=reports.csv "
                 "--truth=truth.csv [--reports=N] [--duplicates=N] "
                 "[--drugs=N] [--adrs=N] [--seed=N]\n";
    return 0;
  }

  const std::string out_path = flags.GetString("out", "reports.csv");
  const std::string truth_path = flags.GetString("truth", "truth.csv");

  datagen::GeneratorConfig config;
  auto reports = flags.GetInt("reports", 10382);
  auto duplicates = flags.GetInt("duplicates", 286);
  auto drugs = flags.GetInt("drugs", 1366);
  auto adrs = flags.GetInt("adrs", 2351);
  auto seed = flags.GetInt("seed", 42);
  for (const auto* result : {&reports, &duplicates, &drugs, &adrs, &seed}) {
    if (!result->ok()) return Fail(result->status());
  }
  config.num_reports = static_cast<size_t>(reports.value());
  config.num_duplicate_pairs = static_cast<size_t>(duplicates.value());
  config.num_drugs = static_cast<size_t>(drugs.value());
  config.num_adrs = static_cast<size_t>(adrs.value());
  config.seed = static_cast<uint64_t>(seed.value());

  const auto corpus = datagen::GenerateCorpus(config);
  if (auto status = report::WriteCsv(corpus.db, out_path); !status.ok()) {
    return Fail(status);
  }

  std::vector<util::CsvRow> truth_rows;
  truth_rows.push_back({"case_number_a", "case_number_b"});
  for (const auto& [a, b] : corpus.duplicate_pairs) {
    truth_rows.push_back(
        {corpus.db.Get(a).case_number(), corpus.db.Get(b).case_number()});
  }
  if (auto status = util::CsvWriteFile(truth_path, truth_rows);
      !status.ok()) {
    return Fail(status);
  }

  const auto summary = Summarize(corpus, config);
  std::cout << "wrote " << summary.num_cases << " reports to " << out_path
            << "\nwrote " << summary.known_duplicate_pairs
            << " ground-truth duplicate pairs to " << truth_path
            << "\nunique drugs: " << summary.num_unique_drugs
            << ", unique ADRs: " << summary.num_unique_adrs << "\n";
  return 0;
}

}  // namespace
}  // namespace adrdedup

int main(int argc, char** argv) { return adrdedup::Main(argc, argv); }
