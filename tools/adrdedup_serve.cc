// adrdedup_serve — runs the online duplicate-screening service against a
// report CSV. Three modes:
//
//  * Replay (default): bootstrap all but the newest --tail reports, then
//    stream the tail through --clients concurrent client threads at an
//    aggregate --qps target, printing a throughput/latency summary.
//  * --stdin: bootstrap the whole CSV, then read one report per logical
//    CSV line from stdin (first line = header naming schema columns) and
//    screen each as it arrives, printing matches to stdout.
//  * --listen=HOST:PORT: bootstrap the whole CSV, then serve the binary
//    frame protocol and the HTTP/JSON adapter (POST /screen,
//    GET /metrics, GET /healthz) on a socket until SIGINT/SIGTERM.
//
//   adrdedup_serve --reports=reports.csv --truth=truth.csv
//       [--tail=500] [--qps=0] [--clients=4] [--stdin]
//       [--listen=HOST:PORT] [--max-connections=1024]
//       [--max-request-bytes=1048576] [--max-write-buffer-bytes=4194304]
//       [--idle-timeout-ms=30000]
//       [--theta=0] [--k=9] [--clusters=32] [--negatives=100000]
//       [--executors=4] [--use-blocking] [--seed=7]
//       [--max-batch=32] [--linger-ms=2] [--queue-capacity=1024]
//       [--refresh-every=0] [--load-model=model.bin]
//       [--out=detections.csv] [--metrics-out=metrics.json]
//       [--memory-budget-mb=N] [--spill-dir=D] [--checkpoint-dir=D]
//
// --qps=0 streams as fast as the service admits (throughput mode). The
// model comes from --load-model, or is fitted at Start() from --truth
// positives plus sampled negatives over the bootstrapped database.
#include <csignal>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/model_io.h"
#include "distance/pair_dataset.h"
#include "minispark/storage/block_manager.h"
#include "minispark/storage/storage_level.h"
#include "distance/simd/dispatch.h"
#include "report/report_io.h"
#include "serve/journal.h"
#include "serve/net/server.h"
#include "serve/request_codec.h"
#include "serve/screening_service.h"
#include "util/csv.h"
#include "util/fault_fs.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace adrdedup {
namespace {

int Fail(const util::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

// Builds the training set the same way adrdedup_detect does: truth pairs
// as positives, uniformly sampled non-truth pairs as negatives — but only
// over the bootstrapped prefix, so streamed reports stay unseen.
util::Result<std::vector<distance::LabeledPair>> BuildLabels(
    const report::ReportDatabase& db,
    const std::vector<distance::ReportFeatures>& features,
    const std::string& truth_path, size_t bootstrap_size, size_t negatives,
    uint64_t seed) {
  auto rows = util::CsvReadFile(truth_path);
  if (!rows.ok()) return rows.status();
  std::unordered_set<uint64_t> keys;
  std::vector<distance::LabeledPair> labels;
  for (size_t r = 1; r < rows.value().size(); ++r) {
    const auto& row = rows.value()[r];
    if (row.size() != 2) {
      return util::Status::InvalidArgument(
          "truth row " + std::to_string(r) + " needs 2 columns");
    }
    auto a = db.FindByCaseNumber(row[0]);
    auto b = db.FindByCaseNumber(row[1]);
    if (!a.ok()) return a.status();
    if (!b.ok()) return b.status();
    if (a.value() >= bootstrap_size || b.value() >= bootstrap_size) {
      continue;  // pair touches the streamed tail; not training material
    }
    distance::LabeledPair pair;
    pair.pair = {std::min(a.value(), b.value()),
                 std::max(a.value(), b.value())};
    pair.label = +1;
    pair.vector =
        ComputeDistanceVector(features[pair.pair.a], features[pair.pair.b]);
    if (keys.insert(PairKey(pair.pair)).second) labels.push_back(pair);
  }
  if (labels.empty()) {
    return util::Status::InvalidArgument(
        "no usable truth pairs inside the bootstrapped prefix");
  }
  const size_t positives = labels.size();
  util::Rng rng(seed);
  const auto n = static_cast<uint32_t>(bootstrap_size);
  // The rejection sampler below can only ever draw pairs from the
  // bootstrap universe; asking for more would loop forever on small
  // databases.
  const uint64_t universe = static_cast<uint64_t>(n) * (n - 1) / 2;
  const uint64_t available = universe > positives ? universe - positives : 0;
  if (negatives > available) {
    std::cerr << "clamping --negatives from " << negatives << " to the "
              << available << " pairs the bootstrapped database offers\n";
    negatives = static_cast<size_t>(available);
  }
  while (labels.size() < positives + negatives) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a == b) continue;
    distance::LabeledPair pair;
    pair.pair = {std::min(a, b), std::max(a, b)};
    if (!keys.insert(PairKey(pair.pair)).second) continue;
    pair.label = -1;
    pair.vector =
        ComputeDistanceVector(features[pair.pair.a], features[pair.pair.b]);
    labels.push_back(pair);
  }
  return labels;
}

int RunStdin(serve::ScreeningService& service, std::istream& in,
             std::ostream& out) {
  util::CsvRow header;
  auto got_header = serve::ReadLogicalCsvRow(in, &header);
  if (!got_header.ok()) return Fail(got_header.status());
  if (!got_header.value()) {
    return Fail(util::Status::InvalidArgument("stdin closed before header"));
  }
  auto columns = serve::ParseColumns(header);
  if (!columns.ok()) return Fail(columns.status());
  out << serve::kDetectionsCsvHeader << "\n";
  size_t screened = 0;
  while (true) {
    util::CsvRow row;
    auto got_row = serve::ReadLogicalCsvRow(in, &row);
    if (!got_row.ok()) return Fail(got_row.status());
    if (!got_row.value()) break;  // EOF
    auto report = serve::RowToReport(columns.value(), row);
    if (!report.ok()) return Fail(report.status());
    auto response = service.Screen(report.value());
    if (!response.ok()) {
      // Shedding is per-request degradation, not a service failure.
      if (response.status().code() == util::StatusCode::kUnavailable) {
        std::cerr << "shed: " << report.value().case_number() << "\n";
        continue;
      }
      return Fail(response.status());
    }
    if (response.value().expired) {
      std::cerr << "expired: " << report.value().case_number() << "\n";
      continue;
    }
    out << serve::FormatMatchesCsv(report.value(), response.value());
    out.flush();
    ++screened;
  }
  std::cerr << "screened " << screened << " reports from stdin\n";
  return 0;
}

// Serves the socket front end until SIGINT/SIGTERM arrives (both must
// already be blocked on every thread — Main masks them before the
// service spawns its workers, so sigwait here is the only consumer).
int RunListen(serve::ScreeningService& service,
              const serve::net::NetServerOptions& net_options,
              const sigset_t& signals) {
  serve::net::NetServer server(&service, net_options);
  if (auto status = server.Start(); !status.ok()) return Fail(status);
  std::cerr << "listening on " << net_options.host << ":" << server.port()
            << " (binary frame protocol + HTTP/1.1)\n";
  int signal_number = 0;
  while (sigwait(&signals, &signal_number) != 0) {
  }
  std::cerr << "caught signal " << signal_number << ", shutting down\n";
  server.Stop();
  return 0;
}

struct ReplayResult {
  size_t screened = 0;
  size_t matches = 0;
  size_t shed = 0;     // dropped by overload load-shedding
  size_t expired = 0;  // answered past their deadline, unscreened
  std::vector<std::string> detections;  // "a,b,score" lines
};

int RunReplay(serve::ScreeningService& service,
              const std::vector<report::AdrReport>& tail_reports, double qps,
              size_t clients, std::vector<std::string>* detections) {
  clients = std::max<size_t>(1, std::min(clients, tail_reports.size()));
  std::vector<ReplayResult> per_client(clients);
  std::atomic<bool> failed{false};
  util::Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Client c streams reports c, c+clients, c+2*clients, ... so the
      // interleaving approximates clients independent request sources.
      const double client_qps = qps / static_cast<double>(clients);
      util::Stopwatch pace;
      size_t sent = 0;
      for (size_t i = c; i < tail_reports.size(); i += clients) {
        if (qps > 0.0) {
          const double due = static_cast<double>(sent) / client_qps;
          const double ahead = due - pace.ElapsedSeconds();
          if (ahead > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
          }
        }
        auto response = service.Screen(tail_reports[i]);
        if (!response.ok()) {
          // A shed request is expected degradation under overload with
          // --submit-deadline-ms set; keep replaying.
          if (response.status().code() == util::StatusCode::kUnavailable) {
            ++sent;
            per_client[c].shed += 1;
            continue;
          }
          failed.store(true);
          return;
        }
        ++sent;
        if (response.value().expired) {
          per_client[c].expired += 1;
          continue;
        }
        per_client[c].screened += 1;
        per_client[c].matches += response.value().matches.size();
        for (const auto& match : response.value().matches) {
          per_client[c].detections.push_back(
              tail_reports[i].case_number() + "," + match.other_case_number +
              "," + std::to_string(match.score));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = wall.ElapsedSeconds();
  if (failed.load()) {
    return Fail(util::Status::FailedPrecondition(
        "a replay client was rejected by the service"));
  }
  size_t screened = 0;
  size_t matches = 0;
  size_t shed = 0;
  size_t expired = 0;
  for (auto& result : per_client) {
    screened += result.screened;
    matches += result.matches;
    shed += result.shed;
    expired += result.expired;
    if (detections != nullptr) {
      detections->insert(detections->end(), result.detections.begin(),
                         result.detections.end());
    }
  }
  const auto latency = service.metrics().TotalLatency();
  std::cout << "replayed " << screened << " reports with " << clients
            << " clients in " << seconds << "s ("
            << static_cast<double>(screened) / seconds << " req/s), "
            << matches << " matches\n";
  if (shed > 0 || expired > 0) {
    std::cout << "degraded: " << shed << " shed, " << expired
              << " expired past deadline\n";
  }
  std::cout << "latency ms: p50=" << latency.p50_ms
            << " p95=" << latency.p95_ms << " p99=" << latency.p99_ms
            << " max=" << latency.max_ms << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  auto parsed = util::FlagSet::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const util::FlagSet& flags = parsed.value();
  if (auto status = flags.ExpectOnly(
          {"reports", "truth", "tail", "qps", "clients", "stdin", "listen",
           "max-connections", "max-request-bytes", "max-write-buffer-bytes",
           "idle-timeout-ms", "theta",
           "k", "clusters", "negatives", "executors", "use-blocking", "seed",
           "max-batch", "linger-ms", "queue-capacity", "refresh-every",
           "submit-deadline-ms", "request-deadline-ms",
           "load-model", "out", "metrics-out", "memory-budget-mb",
           "spill-dir", "checkpoint-dir", "journal-dir", "fsync-policy",
           "snapshot-every", "io-fault-script", "no-simd", "help"});
      !status.ok()) {
    return Fail(status);
  }
  if (flags.GetBool("help", false) || !flags.Has("reports")) {
    std::cout << "usage: adrdedup_serve --reports=reports.csv "
                 "--truth=truth.csv [--tail=N] [--qps=X] [--clients=N] "
                 "[--stdin] [--listen=HOST:PORT] [--max-connections=N] "
                 "[--max-request-bytes=N] [--max-write-buffer-bytes=N] "
                 "[--idle-timeout-ms=X] "
                 "[--theta=X] [--k=N] [--clusters=N] "
                 "[--negatives=N] [--executors=N] [--use-blocking] "
                 "[--seed=N] [--max-batch=N] [--linger-ms=X] "
                 "[--queue-capacity=N] [--refresh-every=N] "
                 "[--submit-deadline-ms=X] [--request-deadline-ms=X] "
                 "[--load-model=F] [--out=F] [--metrics-out=F] "
                 "[--memory-budget-mb=N] [--spill-dir=D] "
                 "[--checkpoint-dir=D] [--journal-dir=D] "
                 "[--fsync-policy=always|batch|never] [--snapshot-every=N] "
                 "[--io-fault-script=S] [--no-simd]\n";
    return flags.GetBool("help", false) ? 0 : 1;
  }
  if (flags.GetBool("no-simd", false)) {
    // Force the scalar kernel dispatch (DESIGN.md §5g) before any work
    // is submitted; equivalent to ADRDEDUP_NO_SIMD=1 in the environment.
    distance::simd::DisableSimd();
  }
  // Storage flags fail fast, before the report CSV is even opened.
  auto memory_budget_mb = flags.GetInt("memory-budget-mb", 0);
  if (!memory_budget_mb.ok()) return Fail(memory_budget_mb.status());
  if (memory_budget_mb.value() < 0) {
    return Fail(util::Status::InvalidArgument(
        "--memory-budget-mb must be non-negative, got " +
        std::to_string(memory_budget_mb.value())));
  }
  const std::string spill_dir = flags.GetString("spill-dir", "");
  const std::string checkpoint_dir = flags.GetString("checkpoint-dir", "");
  for (const std::string* dir : {&spill_dir, &checkpoint_dir}) {
    if (dir->empty()) continue;
    if (auto status = minispark::storage::BlockManager::EnsureWritableDir(*dir);
        !status.ok()) {
      return Fail(status);
    }
  }
  // Durability flags fail fast too — a bad journal dir or policy string
  // must be rejected before the listener binds or the CSV is read.
  const std::string journal_dir = flags.GetString("journal-dir", "");
  serve::FsyncPolicy fsync_policy = serve::FsyncPolicy::kBatch;
  auto snapshot_every = flags.GetInt("snapshot-every", 0);
  if (!snapshot_every.ok()) return Fail(snapshot_every.status());
  if (snapshot_every.value() < 0) {
    return Fail(util::Status::InvalidArgument(
        "--snapshot-every must be non-negative, got " +
        std::to_string(snapshot_every.value())));
  }
  if (flags.Has("fsync-policy")) {
    auto policy =
        serve::ParseFsyncPolicy(flags.GetString("fsync-policy", ""));
    if (!policy.ok()) return Fail(policy.status());
    fsync_policy = policy.value();
  }
  if (!journal_dir.empty()) {
    if (auto status =
            minispark::storage::BlockManager::EnsureWritableDir(journal_dir);
        !status.ok()) {
      return Fail(status);
    }
  } else if (flags.Has("fsync-policy") || flags.Has("snapshot-every")) {
    return Fail(util::Status::InvalidArgument(
        "--fsync-policy and --snapshot-every require --journal-dir"));
  }
  if (flags.Has("io-fault-script")) {
    auto script =
        util::ParseFaultScript(flags.GetString("io-fault-script", ""));
    if (!script.ok()) return Fail(script.status());
    util::FaultFs::Instance().SetScript(script.value());
    std::cerr << "I/O fault injection active: "
              << util::FormatFaultScript(script.value()) << "\n";
  }
  if (flags.GetBool("stdin", false) &&
      (flags.Has("qps") || flags.Has("clients") || flags.Has("out"))) {
    return Fail(util::Status::InvalidArgument(
        "--stdin is interactive; it cannot be combined with the replay "
        "flags --qps, --clients or --out"));
  }
  // Net flags fail fast too — before binding and before the report CSV
  // is opened.
  const bool use_listen = flags.Has("listen");
  serve::net::NetServerOptions net_options;
  if (use_listen) {
    if (flags.GetBool("stdin", false)) {
      return Fail(util::Status::InvalidArgument(
          "--listen and --stdin are mutually exclusive front ends"));
    }
    if (flags.Has("qps") || flags.Has("clients") || flags.Has("out")) {
      return Fail(util::Status::InvalidArgument(
          "--listen serves sockets; it cannot be combined with the replay "
          "flags --qps, --clients or --out"));
    }
    auto address = serve::net::ParseListenAddress(
        flags.GetString("listen", ""));
    if (!address.ok()) return Fail(address.status());
    net_options.host = address.value().first;
    net_options.port = address.value().second;
    auto max_connections = flags.GetInt("max-connections", 1024);
    auto max_request_bytes = flags.GetInt("max-request-bytes", 1 << 20);
    auto max_write_buffer_bytes =
        flags.GetInt("max-write-buffer-bytes", 4 << 20);
    auto idle_timeout_ms = flags.GetDouble("idle-timeout-ms", 30000.0);
    for (const auto* result :
         {&max_connections, &max_request_bytes, &max_write_buffer_bytes}) {
      if (!result->ok()) return Fail(result->status());
    }
    if (!idle_timeout_ms.ok()) return Fail(idle_timeout_ms.status());
    if (max_connections.value() <= 0) {
      return Fail(util::Status::InvalidArgument(
          "--max-connections must be positive, got " +
          std::to_string(max_connections.value())));
    }
    if (max_request_bytes.value() <= 0 ||
        max_write_buffer_bytes.value() <= 0) {
      return Fail(util::Status::InvalidArgument(
          "--max-request-bytes and --max-write-buffer-bytes must be "
          "positive"));
    }
    if (idle_timeout_ms.value() < 0.0) {
      return Fail(util::Status::InvalidArgument(
          "--idle-timeout-ms must be non-negative, got " +
          std::to_string(idle_timeout_ms.value())));
    }
    net_options.max_connections =
        static_cast<size_t>(max_connections.value());
    net_options.max_request_bytes =
        static_cast<size_t>(max_request_bytes.value());
    net_options.max_write_buffer_bytes =
        static_cast<size_t>(max_write_buffer_bytes.value());
    net_options.idle_timeout_ms = idle_timeout_ms.value();
  } else if (flags.Has("max-connections") || flags.Has("max-request-bytes") ||
             flags.Has("max-write-buffer-bytes") ||
             flags.Has("idle-timeout-ms")) {
    return Fail(util::Status::InvalidArgument(
        "--max-connections, --max-request-bytes, --max-write-buffer-bytes "
        "and --idle-timeout-ms require --listen"));
  }

  auto tail_flag = flags.GetInt("tail", 500);
  auto qps = flags.GetDouble("qps", 0.0);
  auto clients = flags.GetInt("clients", 4);
  auto theta = flags.GetDouble("theta", 0.0);
  auto k = flags.GetInt("k", 9);
  auto clusters = flags.GetInt("clusters", 32);
  auto negatives = flags.GetInt("negatives", 100000);
  auto executors = flags.GetInt("executors", 4);
  auto seed = flags.GetInt("seed", 7);
  auto max_batch = flags.GetInt("max-batch", 32);
  auto linger_ms = flags.GetDouble("linger-ms", 2.0);
  auto queue_capacity = flags.GetInt("queue-capacity", 1024);
  auto refresh_every = flags.GetInt("refresh-every", 0);
  auto submit_deadline_ms = flags.GetDouble("submit-deadline-ms", 0.0);
  auto request_deadline_ms = flags.GetDouble("request-deadline-ms", 0.0);
  for (const auto* result :
       {&tail_flag, &clients, &k, &clusters, &negatives, &executors, &seed,
        &max_batch, &queue_capacity, &refresh_every}) {
    if (!result->ok()) return Fail(result->status());
  }
  for (const auto* result :
       {&qps, &theta, &linger_ms, &submit_deadline_ms, &request_deadline_ms}) {
    if (!result->ok()) return Fail(result->status());
  }
  if (k.value() <= 0 || clusters.value() <= 0 || executors.value() <= 0 ||
      clients.value() <= 0 || max_batch.value() <= 0 ||
      queue_capacity.value() <= 0) {
    return Fail(util::Status::InvalidArgument(
        "--k, --clusters, --executors, --clients, --max-batch and "
        "--queue-capacity must all be positive"));
  }
  if (tail_flag.value() < 0 || negatives.value() < 0 ||
      refresh_every.value() < 0 || qps.value() < 0.0 ||
      linger_ms.value() < 0.0 || submit_deadline_ms.value() < 0.0 ||
      request_deadline_ms.value() < 0.0) {
    return Fail(util::Status::InvalidArgument(
        "--tail, --negatives, --refresh-every, --qps, --linger-ms, "
        "--submit-deadline-ms and --request-deadline-ms must be "
        "non-negative"));
  }

  auto db_result = report::ReadCsv(flags.GetString("reports", ""));
  if (!db_result.ok()) return Fail(db_result.status());
  const report::ReportDatabase& db = db_result.value();
  if (db.size() == 0) {
    return Fail(util::Status::InvalidArgument("--reports file is empty"));
  }

  const bool use_stdin = flags.GetBool("stdin", false);
  // Interactive front ends (stdin, socket) bootstrap the whole CSV; only
  // replay holds a tail back to stream.
  const size_t tail =
      (use_stdin || use_listen)
          ? 0
          : std::min<size_t>(db.size() - 1,
                             static_cast<size_t>(tail_flag.value()));
  const size_t bootstrap_size = db.size() - tail;

  minispark::SparkContext ctx(
      {.num_executors = static_cast<size_t>(executors.value()),
       .memory_budget_bytes =
           static_cast<uint64_t>(memory_budget_mb.value()) * 1024 * 1024,
       .spill_dir = spill_dir,
       .checkpoint_dir = checkpoint_dir});

  serve::ScreeningServiceOptions options;
  options.pipeline.knn.k = static_cast<size_t>(k.value());
  options.pipeline.knn.num_clusters = static_cast<size_t>(clusters.value());
  options.pipeline.theta = theta.value();
  options.pipeline.use_blocking = flags.GetBool("use-blocking", false);
  if (memory_budget_mb.value() > 0 || !spill_dir.empty()) {
    // A bounded serving process keeps its screening stages spillable so
    // a burst of wide batches degrades to disk instead of growing the
    // resident set.
    options.pipeline.persist_level =
        minispark::storage::StorageLevel::kMemoryAndDisk;
  }
  options.queue_capacity = static_cast<size_t>(queue_capacity.value());
  options.max_batch = static_cast<size_t>(max_batch.value());
  options.max_linger_ms = linger_ms.value();
  options.refresh_every = static_cast<size_t>(refresh_every.value());
  options.submit_deadline_ms = submit_deadline_ms.value();
  options.request_deadline_ms = request_deadline_ms.value();
  options.journal_dir = journal_dir;
  options.fsync_policy = fsync_policy;
  options.snapshot_every = static_cast<size_t>(snapshot_every.value());

  // Mask the shutdown signals before any worker thread exists so they
  // are delivered to RunListen's sigwait and nowhere else.
  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  if (use_listen) {
    sigaddset(&shutdown_signals, SIGINT);
    sigaddset(&shutdown_signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &shutdown_signals, nullptr);
  }

  serve::ScreeningService service(&ctx, options);

  std::vector<report::AdrReport> bootstrap;
  bootstrap.reserve(bootstrap_size);
  std::vector<report::AdrReport> tail_reports;
  tail_reports.reserve(tail);
  for (size_t i = 0; i < db.size(); ++i) {
    auto& dest = i < bootstrap_size ? bootstrap : tail_reports;
    dest.push_back(db.Get(static_cast<report::ReportId>(i)));
  }
  service.Bootstrap(bootstrap);
  std::cerr << "bootstrapped " << bootstrap_size << " reports, streaming "
            << (use_listen ? std::string("sockets")
                           : use_stdin ? std::string("stdin")
                                       : std::to_string(tail))
            << "\n";

  if (flags.Has("load-model")) {
    auto loaded = core::LoadModelFromFile(flags.GetString("load-model", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    service.AdoptClassifier(std::move(loaded).value());
    std::cerr << "adopted pre-trained model\n";
  } else {
    if (!flags.Has("truth")) {
      return Fail(util::Status::InvalidArgument(
          "--truth is required unless --load-model is given"));
    }
    const auto features =
        distance::ExtractAllFeatures(db, {}, &ctx.pool());
    auto labels = BuildLabels(db, features, flags.GetString("truth", ""),
                              bootstrap_size,
                              static_cast<size_t>(negatives.value()),
                              static_cast<uint64_t>(seed.value()));
    if (!labels.ok()) return Fail(labels.status());
    service.SeedLabels(labels.value());
    std::cerr << "seeded " << labels.value().size() << " labelled pairs\n";
  }

  if (auto status = service.Start(); !status.ok()) return Fail(status);
  if (!journal_dir.empty()) {
    std::cerr << "durable serving: journal dir " << journal_dir
              << ", fsync policy " << serve::FsyncPolicyName(fsync_policy)
              << ", snapshot generation " << service.snapshot_generation()
              << "\n";
  }

  int rc = 0;
  if (use_listen) {
    rc = RunListen(service, net_options, shutdown_signals);
  } else if (use_stdin) {
    rc = RunStdin(service, std::cin, std::cout);
  } else {
    std::vector<std::string> detections;
    const bool want_out = flags.Has("out");
    rc = RunReplay(service, tail_reports, qps.value(),
                   static_cast<size_t>(clients.value()),
                   want_out ? &detections : nullptr);
    if (rc == 0 && want_out) {
      const std::string out_path = flags.GetString("out", "detections.csv");
      std::ofstream out(out_path, std::ios::trunc);
      out << "case_number_a,case_number_b,score\n";
      std::sort(detections.begin(), detections.end());
      for (const auto& line : detections) out << line << "\n";
      if (!out) return Fail(util::Status::IoError("cannot write " + out_path));
      std::cerr << "detections written to " << out_path << "\n";
    }
  }
  service.Stop();

  if (flags.Has("metrics-out")) {
    const std::string metrics_path = flags.GetString("metrics-out", "");
    std::ofstream out(metrics_path, std::ios::trunc);
    out << service.MetricsJson(/*pretty=*/true) << "\n";
    if (!out) {
      return Fail(util::Status::IoError("cannot write " + metrics_path));
    }
    std::cerr << "metrics written to " << metrics_path << "\n";
  }
  return rc;
}

}  // namespace
}  // namespace adrdedup

int main(int argc, char** argv) {
  try {
    return adrdedup::Main(argc, argv);
  } catch (const std::exception& e) {
    // Any stray exception becomes a clean one-line failure instead of
    // std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
